file(REMOVE_RECURSE
  "CMakeFiles/emerald_gpu.dir/gpu/coalescer.cc.o"
  "CMakeFiles/emerald_gpu.dir/gpu/coalescer.cc.o.d"
  "CMakeFiles/emerald_gpu.dir/gpu/gpu_top.cc.o"
  "CMakeFiles/emerald_gpu.dir/gpu/gpu_top.cc.o.d"
  "CMakeFiles/emerald_gpu.dir/gpu/isa/assembler.cc.o"
  "CMakeFiles/emerald_gpu.dir/gpu/isa/assembler.cc.o.d"
  "CMakeFiles/emerald_gpu.dir/gpu/isa/cfg.cc.o"
  "CMakeFiles/emerald_gpu.dir/gpu/isa/cfg.cc.o.d"
  "CMakeFiles/emerald_gpu.dir/gpu/isa/executor.cc.o"
  "CMakeFiles/emerald_gpu.dir/gpu/isa/executor.cc.o.d"
  "CMakeFiles/emerald_gpu.dir/gpu/isa/instruction.cc.o"
  "CMakeFiles/emerald_gpu.dir/gpu/isa/instruction.cc.o.d"
  "CMakeFiles/emerald_gpu.dir/gpu/kernel.cc.o"
  "CMakeFiles/emerald_gpu.dir/gpu/kernel.cc.o.d"
  "CMakeFiles/emerald_gpu.dir/gpu/scoreboard.cc.o"
  "CMakeFiles/emerald_gpu.dir/gpu/scoreboard.cc.o.d"
  "CMakeFiles/emerald_gpu.dir/gpu/simt_core.cc.o"
  "CMakeFiles/emerald_gpu.dir/gpu/simt_core.cc.o.d"
  "CMakeFiles/emerald_gpu.dir/gpu/simt_stack.cc.o"
  "CMakeFiles/emerald_gpu.dir/gpu/simt_stack.cc.o.d"
  "libemerald_gpu.a"
  "libemerald_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emerald_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
