/**
 * @file
 * Error and status reporting, following the gem5 fatal/panic convention.
 *
 * panic()  - an internal simulator bug: something that should never
 *            happen regardless of user input. Aborts.
 * fatal()  - the simulation cannot continue because of a user error
 *            (bad configuration, invalid arguments). Exits with an
 *            error code.
 * warn()   - functionality that may not behave exactly as intended.
 * inform() - normal operating status messages.
 */

#ifndef EMERALD_SIM_LOGGING_HH
#define EMERALD_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace emerald
{

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** printf-style formatting from a va_list. */
std::string vstrprintf(const char *fmt, va_list args);

/**
 * Escape @p s for embedding inside a JSON string literal (quotes,
 * backslashes and control characters). Used by the stats JSON dumper
 * and the Chrome-trace event tracer.
 */
std::string jsonEscape(const std::string &s);

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));

[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));

void warnImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

void informImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Silence warn()/inform() output (used by tests and benches). */
void setQuietLogging(bool quiet);

} // namespace emerald

#define panic(...) ::emerald::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) ::emerald::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define warn(...) ::emerald::warnImpl(__VA_ARGS__)
#define inform(...) ::emerald::informImpl(__VA_ARGS__)

/** panic() unless @p cond holds. */
#define panic_if(cond, ...)                                               \
    do {                                                                  \
        if (cond)                                                         \
            panic(__VA_ARGS__);                                           \
    } while (0)

/** fatal() unless @p cond holds. */
#define fatal_if(cond, ...)                                               \
    do {                                                                  \
        if (cond)                                                         \
            fatal(__VA_ARGS__);                                           \
    } while (0)

#endif // EMERALD_SIM_LOGGING_HH
