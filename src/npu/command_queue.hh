/**
 * @file
 * NPU command queue and the submit/interrupt interfaces around it.
 *
 * The host side (the camera-inference workload model) submits
 * NpuCommands through NpuCommandSink; the device (NpuTop) executes
 * them in FIFO order and delivers interrupt-style completions through
 * NpuIntClient after a modeled IRQ latency — the command-queue +
 * interrupt shape of gem5-aladdin's v2.0 systolic-array device
 * (SNIPPETS.md). Both sides hold only these abstract interfaces, so
 * the seam stays cuttable for the shard partitioner
 * (docs/static_analysis.md) and either side can be faked in tests.
 */

#ifndef EMERALD_NPU_COMMAND_QUEUE_HH
#define EMERALD_NPU_COMMAND_QUEUE_HH

#include <cstdint>
#include <deque>
#include <string>

#include "sim/types.hh"

namespace emerald
{
class CheckpointIn;
class CheckpointOut;
} // namespace emerald

namespace emerald::npu
{

/** One queued inference request. */
struct NpuCommand
{
    /** Monotonic id assigned by the submitter. */
    std::uint64_t id = 0;
    /** Camera frame index this inference belongs to. */
    std::uint32_t frame = 0;
    /** Absolute completion deadline. */
    Tick deadline = 0;
    /** Submission tick (queue-wait accounting). */
    Tick enqueued = 0;
};

/** Device-side interface the workload model submits into. */
class NpuCommandSink
{
  public:
    virtual ~NpuCommandSink() = default;

    /** Enqueue @p cmd; false when the command queue is full. */
    virtual bool submit(const NpuCommand &cmd) = 0;

    virtual std::size_t queueDepth() const = 0;
    virtual unsigned queueCapacity() const = 0;

    /** Total work units (tiles) one inference executes. */
    virtual double inferenceWork() const = 0;
};

/** Host-side interrupt handler for command completion/progress. */
class NpuIntClient
{
  public:
    virtual ~NpuIntClient() = default;

    /**
     * Command @p cmd retired (interrupt). @p finished is the tick
     * execution ended (the IRQ itself lands irqLatency later);
     * @p aborted marks a watchdog-degrade abort instead of a
     * completed inference.
     */
    virtual void npuCommandDone(const NpuCommand &cmd, Tick finished,
                                bool aborted) = 0;

    /** @p work more units of @p cmd completed (deadline tracking). */
    virtual void npuCommandProgress(const NpuCommand &cmd,
                                    double work) = 0;
};

/** Bounded FIFO of pending commands, checkpoint-serializable. */
class NpuCommandQueue
{
  public:
    explicit NpuCommandQueue(unsigned capacity) : _capacity(capacity) {}

    bool full() const { return _queue.size() >= _capacity; }
    bool empty() const { return _queue.empty(); }
    std::size_t size() const { return _queue.size(); }
    unsigned capacity() const { return _capacity; }

    /** @return false (queue unchanged) when full. */
    bool push(const NpuCommand &cmd);

    /** Pop the oldest command. @pre !empty(). */
    NpuCommand pop();

    const NpuCommand &front() const { return _queue.front(); }

    void serialize(CheckpointOut &out,
                   const std::string &prefix) const;
    void unserialize(CheckpointIn &in, const std::string &prefix);

  private:
    unsigned _capacity;
    std::deque<NpuCommand> _queue;
};

/** Checkpoint helpers shared by the queue and NpuTop's active slot. */
void putNpuCommand(CheckpointOut &out, const std::string &prefix,
                   const NpuCommand &cmd);
NpuCommand getNpuCommand(CheckpointIn &in, const std::string &prefix);

} // namespace emerald::npu

#endif // EMERALD_NPU_COMMAND_QUEUE_HH
