#include "sim/config.hh"

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "sim/logging.hh"

namespace emerald
{

namespace
{

/**
 * Every --key some bench, example or the simulation kernel reads.
 * parseArgs rejects anything else (with a near-miss suggestion)
 * unless --allow-unknown-args is given; keeping the table here, next
 * to the parser, makes "add a flag" a one-line change.
 */
const char *const knownKeys[] = {
    // Simulation kernel (SimulationBuilder::observability).
    "check-determinism", "checkpoint-at", "checkpoint-dir",
    "fault-plan", "fault-seed", "profile", "restore", "restore-force",
    "sim-stats-json", "trace-file", "watchdog-mode", "watchdog-ticks",
    // Parser control.
    "allow-unknown-args",
    // Benches and examples.
    "alpha", "beta", "config", "frames", "gamma", "height", "highload",
    "maxwt", "model", "n", "name", "out", "outdir", "prep", "quick",
    "run_frames", "stats", "stats-json", "width", "workload", "wt",
};

bool
isKnownKey(const std::string &key)
{
    for (const char *known : knownKeys)
        if (key == known)
            return true;
    return false;
}

/** Classic Levenshtein distance (keys are short; O(n*m) is fine). */
std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diag = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            std::size_t prev = row[j];
            row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                               diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
            diag = prev;
        }
    }
    return row[b.size()];
}

/** Closest known key within an edit distance worth suggesting. */
std::string
nearestKnownKey(const std::string &key)
{
    std::string best;
    std::size_t best_dist = std::max<std::size_t>(2, key.size() / 3);
    for (const char *known : knownKeys) {
        std::size_t d = editDistance(key, known);
        if (d <= best_dist) {
            best_dist = d - 1; // Strictly better from now on.
            best = known;
        }
    }
    return best;
}

void
rejectUnknownKey(const std::string &key)
{
    std::string suggestion = nearestKnownKey(key);
    if (!suggestion.empty()) {
        fatal("unknown option '--%s' — did you mean '--%s'? (pass "
              "--allow-unknown-args to skip this check)",
              key.c_str(), suggestion.c_str());
    }
    fatal("unknown option '--%s' (pass --allow-unknown-args to skip "
          "this check)", key.c_str());
}

} // namespace

void
Config::parseArgs(int argc, char **argv)
{
    // First pass: the opt-out may appear anywhere on the line.
    bool allow_unknown = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--allow-unknown-args" ||
            arg.rfind("--allow-unknown-args=", 0) == 0)
            allow_unknown = true;
    }

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            fatal("bad argument '%s': expected --key=value", arg.c_str());
        auto eq = arg.find('=');
        std::string key = eq != std::string::npos
                              ? arg.substr(2, eq - 2)
                              : arg.substr(2);
        if (!allow_unknown && !isKnownKey(key))
            rejectUnknownKey(key);
        if (eq != std::string::npos) {
            set(key, arg.substr(eq + 1));
        } else if (i + 1 < argc && argv[i + 1][0] != '-') {
            // "--key value" form, e.g. "--stats-json out.json".
            set(key, argv[++i]);
        } else {
            // Bare "--flag" is a boolean switch.
            set(key, "1");
        }
    }
}

void
Config::set(const std::string &key, const std::string &value)
{
    _values[key] = value;
}

bool
Config::has(const std::string &key) const
{
    return _values.count(key) != 0;
}

std::string
Config::getString(const std::string &key, const std::string &dflt) const
{
    auto it = _values.find(key);
    return it == _values.end() ? dflt : it->second;
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t dflt) const
{
    auto it = _values.find(key);
    if (it == _values.end())
        return dflt;
    return std::strtoll(it->second.c_str(), nullptr, 0);
}

std::uint64_t
Config::getU64(const std::string &key, std::uint64_t dflt) const
{
    auto it = _values.find(key);
    if (it == _values.end())
        return dflt;
    const char *text = it->second.c_str();
    char *end = nullptr;
    fatal_if(it->second.empty() || text[0] == '-',
             "config key '%s': '%s' is not a non-negative integer",
             key.c_str(), text);
    std::uint64_t value = std::strtoull(text, &end, 0);
    fatal_if(end == text || *end != '\0',
             "config key '%s': '%s' is not a non-negative integer",
             key.c_str(), text);
    return value;
}

double
Config::getDouble(const std::string &key, double dflt) const
{
    auto it = _values.find(key);
    if (it == _values.end())
        return dflt;
    return std::strtod(it->second.c_str(), nullptr);
}

bool
Config::getBool(const std::string &key, bool dflt) const
{
    auto it = _values.find(key);
    if (it == _values.end())
        return dflt;
    const std::string &v = it->second;
    return v == "1" || v == "true" || v == "yes" || v == "on";
}

} // namespace emerald
