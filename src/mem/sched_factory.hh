/**
 * @file
 * Factory registry for DRAM scheduling policies (--mem-sched).
 *
 * Rigs never construct a concrete DramScheduler directly (the
 * emerald_lint sched-factory rule enforces this): they describe the
 * environment in a MemSchedContext and ask createMemScheduler() for a
 * bundle. A bundle owns the policy object plus any shared coordinator
 * the policy needs (DASH's cross-channel state); policies without one
 * leave the coordinator null.
 */

#ifndef EMERALD_MEM_SCHED_FACTORY_HH
#define EMERALD_MEM_SCHED_FACTORY_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mem/dash_scheduler.hh"
#include "mem/dram_channel.hh"

namespace emerald::mem
{

/** The --mem-sched policy used when none is requested. */
inline constexpr const char *defaultMemSchedPolicy = "frfcfs";

/** Everything a policy factory may need to build its bundle. */
struct MemSchedContext
{
    Simulation &sim;
    /** SimObject name for any coordinator the policy creates. */
    std::string coordinatorName = "dash";
    /** Tunables for the DASH family; ignored by simpler policies. */
    DashParams dashParams = {};
};

/** One constructed policy: the scheduler plus its shared state. */
struct MemSchedBundle
{
    /** Cross-channel coordinator, or null for stateless policies. */
    std::unique_ptr<DashCoordinator> coordinator;
    std::unique_ptr<DramScheduler> scheduler;
};

using MemSchedulerFactory =
    std::function<MemSchedBundle(const MemSchedContext &)>;

/**
 * Register a policy under @p policy (fatal on duplicates). Like the
 * warp-scheduler registry, registration happens lazily inside the
 * registry accessor — never via static initializers, which the linker
 * strips from static libraries.
 */
void registerMemScheduler(const std::string &policy,
                          MemSchedulerFactory factory);

/**
 * Construct the named policy. An empty @p policy selects
 * defaultMemSchedPolicy; an unknown name is fatal with a near-miss
 * suggestion.
 */
MemSchedBundle createMemScheduler(const std::string &policy,
                                  const MemSchedContext &ctx);

/** All registered policy names, sorted. */
std::vector<std::string> memSchedulerPolicies();

} // namespace emerald::mem

#endif // EMERALD_MEM_SCHED_FACTORY_HH
