/**
 * @file
 * Clipping and culling (paper Fig. 2 step 5 / Fig. 3 stage E).
 *
 * Trivially invisible primitives (fully outside one frustum plane)
 * are rejected; primitives crossing the near plane are clipped
 * Sutherland-Hodgman style into a small fan. The remaining planes
 * are handled by the rasterizer's screen-space scissor.
 */

#ifndef EMERALD_CORE_CLIPPER_HH
#define EMERALD_CORE_CLIPPER_HH

#include <array>

#include "core/draw_call.hh"
#include "core/math.hh"

namespace emerald::core
{

/** A clip-space vertex with its varyings. */
struct ClipVertex
{
    Vec4 pos;
    std::array<float, maxVaryings> attrs = {};
};

/** Result of clipping one triangle: up to 3 output triangles. */
struct ClipResult
{
    unsigned count = 0;
    std::array<std::array<ClipVertex, 3>, 3> tris;
};

/** True when all three vertices are outside one frustum plane. */
bool trivialReject(const ClipVertex verts[3]);

/**
 * Clip @p verts against the w-epsilon and near planes.
 * @return false when nothing remains.
 */
bool clipTriangle(const ClipVertex verts[3], ClipResult &out);

} // namespace emerald::core

#endif // EMERALD_CORE_CLIPPER_HH
