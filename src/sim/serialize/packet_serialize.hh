/**
 * @file
 * Checkpoint helpers for in-flight MemPackets.
 *
 * Packet ownership in Emerald is exclusive: at any instant each live
 * packet sits in exactly one component's queue (or held-retry slot),
 * so each component serializes the packets it holds. These helpers
 * write/restore one packet under a key prefix; the response target
 * (MemPacket::client) travels as a registry name and the storage is
 * re-allocated from the Simulation's PacketPool on restore.
 */

#ifndef EMERALD_SIM_SERIALIZE_PACKET_SERIALIZE_HH
#define EMERALD_SIM_SERIALIZE_PACKET_SERIALIZE_HH

#include <string>

#include "sim/serialize/serialize.hh"

namespace emerald
{

class CheckpointRegistry;
class MemPacket;
class PacketPool;

/** Write @p pkt's fields under "<prefix>." keys. */
void putPacket(CheckpointOut &out, const std::string &prefix,
               const MemPacket &pkt, const CheckpointRegistry &reg);

/**
 * Re-allocate a packet saved by putPacket() from @p pool, resolving
 * its client through @p reg (a posted write restores client ==
 * nullptr).
 */
MemPacket *getPacket(CheckpointIn &in, const std::string &prefix,
                     PacketPool &pool, const CheckpointRegistry &reg);

} // namespace emerald

#endif // EMERALD_SIM_SERIALIZE_PACKET_SERIALIZE_HH
