#include "soc/cpu_traffic.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/serialize/packet_serialize.hh"
#include "sim/serialize/registry.hh"
#include "sim/simulation.hh"

namespace emerald::soc
{

CpuCoreModel::CpuCoreModel(Simulation &sim, const std::string &name,
                           ClockDomain &cpu_clock,
                           const CpuCoreParams &params,
                           MemSink &downstream)
    : SimObject(sim, name),
      statRequests(*this, "requests", "memory requests issued"),
      statQuotas(*this, "quotas", "work quotas completed"),
      statLatency(*this, "latency", "load-to-use latency (ticks)"),
      _params(params), _clock(cpu_clock), _downstream(downstream),
      _cursor(params.regionBase),
      _rng(params.seed ^ (0x9e37 + params.coreId)),
      _issueEvent([this] { issueOne(); }, name + ".issue")
{
    registerCheckpointEvent(_issueEvent);
    registerCheckpointClient(*this);
    registerCheckpointRequestor(*this);
}

void
CpuCoreModel::serialize(CheckpointOut &out) const
{
    const CheckpointRegistry &reg = sim().checkpointRegistry();
    out.putU64("quota_remaining", _quotaRemaining);
    out.putBool("has_quota_done", static_cast<bool>(_quotaDone));
    out.putBool("background", _background);
    out.putU64("outstanding", _outstanding);
    out.putBool("has_retry_pkt", _retryPkt != nullptr);
    if (_retryPkt) {
        putPacket(out, "retry_pkt", *_retryPkt, reg);
        out.putBool("retry_quota", _retryQuota);
    }
    out.putU64("cursor", _cursor);
    auto rng = _rng.state();
    out.putU64Vec("rng", {rng[0], rng[1], rng[2], rng[3]});
}

void
CpuCoreModel::unserialize(CheckpointIn &in)
{
    const CheckpointRegistry &reg = sim().checkpointRegistry();
    _quotaRemaining = in.getU64("quota_remaining");
    // The callback itself is a lambda owned by the AppModel; it is
    // re-installed by AppModel::unserialize (see rebindQuotaCallback).
    _quotaDonePending = in.getBool("has_quota_done");
    _background = in.getBool("background");
    _outstanding = static_cast<unsigned>(in.getU64("outstanding"));
    if (in.getBool("has_retry_pkt")) {
        _retryPkt = getPacket(in, "retry_pkt", sim().packetPool(), reg);
        _retryQuota = in.getBool("retry_quota");
    }
    _cursor = in.getU64("cursor");
    auto rng = in.getU64Vec("rng");
    fatal_if(rng.size() != 4, "%s: bad rng state", name().c_str());
    _rng.setState({rng[0], rng[1], rng[2], rng[3]});
}

void
CpuCoreModel::runQuota(std::uint64_t requests,
                       std::function<void()> on_done)
{
    panic_if(_quotaRemaining > 0, "%s: overlapping quotas",
             name().c_str());
    if (requests == 0) {
        if (on_done)
            on_done();
        return;
    }
    _quotaRemaining = requests;
    _quotaDone = std::move(on_done);
    trySchedule();
}

void
CpuCoreModel::setBackground(bool enabled)
{
    _background = enabled;
    if (enabled)
        trySchedule();
}

Addr
CpuCoreModel::nextAddr()
{
    if (_rng.chance(_params.locality)) {
        _cursor += 64;
        if (_cursor >= _params.regionBase + _params.regionBytes)
            _cursor = _params.regionBase;
    } else {
        _cursor = _params.regionBase +
                  (_rng.next() % (_params.regionBytes / 64)) * 64;
    }
    return _cursor;
}

void
CpuCoreModel::trySchedule()
{
    if (_issueEvent.scheduled() || _retryPkt)
        return;
    bool want_issue =
        (_quotaRemaining > 0 &&
         _outstanding < _params.maxOutstanding) ||
        (_background && _quotaRemaining == 0 &&
         _outstanding < _params.backgroundOutstanding);
    if (!want_issue)
        return;
    Cycle delay = _quotaRemaining > 0 ? _params.thinkCycles
                                      : _params.backgroundInterval;
    if (delay == 0)
        delay = 1;
    schedule(_issueEvent, _clock.clockEdge(delay));
}

void
CpuCoreModel::issueOne()
{
    bool quota = _quotaRemaining > 0;
    if ((!quota && !_background) || _retryPkt)
        return;
    if (_outstanding >= _params.maxOutstanding) {
        return; // Response path will reschedule.
    }

    bool write = _rng.chance(_params.writeFraction);
    MemPacket *pkt = sim().packetPool().alloc(
        nextAddr(), 64, write, TrafficClass::Cpu, AccessKind::CpuData,
        static_cast<int>(_params.coreId), this, 0);
    pkt->issued = curTick();
    // Count before offering: the sink may respond synchronously.
    ++_outstanding;
    if (!_downstream.offer(pkt, *this)) {
        // Cache busy: hold the packet (window slot stays reserved)
        // until the cache's retryRequest() wakes us; no polling.
        _retryPkt = pkt;
        _retryQuota = quota;
        return;
    }
    requestAccepted(quota);
}

void
CpuCoreModel::requestAccepted(bool quota)
{
    ++statRequests;
    if (quota)
        --_quotaRemaining;

    // A synchronous response may have drained the window already.
    maybeCompleteQuota();
    // Pipeline more requests up to the outstanding window.
    trySchedule();
}

void
CpuCoreModel::retryRequest()
{
    if (!_retryPkt) {
        trySchedule();
        return;
    }
    MemPacket *pkt = _retryPkt;
    _retryPkt = nullptr;
    if (!_downstream.offer(pkt, *this)) {
        _retryPkt = pkt;
        return;
    }
    bool quota = _retryQuota;
    _retryQuota = false;
    requestAccepted(quota);
}

void
CpuCoreModel::maybeCompleteQuota()
{
    if (_quotaRemaining == 0 && _outstanding == 0 && _quotaDone) {
        ++statQuotas;
        auto done = std::move(_quotaDone);
        _quotaDone = nullptr;
        done();
    }
}

void
CpuCoreModel::memResponse(MemPacket *pkt)
{
    statLatency.sample(static_cast<double>(curTick() - pkt->issued));
    freePacket(pkt);
    panic_if(_outstanding == 0, "CPU response underflow");
    --_outstanding;

    maybeCompleteQuota();
    trySchedule();
}

} // namespace emerald::soc
