file(REMOVE_RECURSE
  "libemerald_gpu.a"
)
