file(REMOVE_RECURSE
  "CMakeFiles/fig12_memsched_highload.dir/fig12_memsched_highload.cpp.o"
  "CMakeFiles/fig12_memsched_highload.dir/fig12_memsched_highload.cpp.o.d"
  "fig12_memsched_highload"
  "fig12_memsched_highload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_memsched_highload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
