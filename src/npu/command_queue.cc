#include "npu/command_queue.hh"

#include "sim/logging.hh"
#include "sim/serialize/serialize.hh"

namespace emerald::npu
{

bool
NpuCommandQueue::push(const NpuCommand &cmd)
{
    if (full())
        return false;
    _queue.push_back(cmd);
    return true;
}

NpuCommand
NpuCommandQueue::pop()
{
    panic_if(_queue.empty(), "npu command queue underflow");
    NpuCommand cmd = _queue.front();
    _queue.pop_front();
    return cmd;
}

void
putNpuCommand(CheckpointOut &out, const std::string &prefix,
              const NpuCommand &cmd)
{
    out.putU64(prefix + ".id", cmd.id);
    out.putU64(prefix + ".frame", cmd.frame);
    out.putTick(prefix + ".deadline", cmd.deadline);
    out.putTick(prefix + ".enqueued", cmd.enqueued);
}

NpuCommand
getNpuCommand(CheckpointIn &in, const std::string &prefix)
{
    NpuCommand cmd;
    cmd.id = in.getU64(prefix + ".id");
    cmd.frame = static_cast<std::uint32_t>(
        in.getU64(prefix + ".frame"));
    cmd.deadline = in.getTick(prefix + ".deadline");
    cmd.enqueued = in.getTick(prefix + ".enqueued");
    return cmd;
}

void
NpuCommandQueue::serialize(CheckpointOut &out,
                           const std::string &prefix) const
{
    out.putU64(prefix + ".num", _queue.size());
    for (std::size_t i = 0; i < _queue.size(); ++i)
        putNpuCommand(out, strprintf("%s.c%zu", prefix.c_str(), i),
                      _queue[i]);
}

void
NpuCommandQueue::unserialize(CheckpointIn &in,
                             const std::string &prefix)
{
    _queue.clear();
    std::uint64_t num = in.getU64(prefix + ".num");
    for (std::uint64_t i = 0; i < num; ++i)
        _queue.push_back(getNpuCommand(
            in, strprintf("%s.c%llu", prefix.c_str(),
                          (unsigned long long)i)));
}

} // namespace emerald::npu
