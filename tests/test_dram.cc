#include <gtest/gtest.h>

#include "mem/frfcfs_scheduler.hh"
#include "mem/memory_system.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"

using namespace emerald;
using namespace emerald::mem;

namespace
{

struct Catcher : public MemClient
{
    std::vector<std::pair<Tick, Addr>> done;
    Simulation *sim = nullptr;

    void
    memResponse(MemPacket *pkt) override
    {
        done.emplace_back(sim->curTick(), pkt->addr);
        delete pkt;
    }
};

MemorySystemParams
params2ch(double rate = 1333.0)
{
    MemorySystemParams mp;
    mp.geom.channels = 2;
    mp.timing = lpddr3Timing(rate, 32, 128);
    mp.statsBucket = ticksFromUs(10.0);
    return mp;
}

MemPacket *
readPkt(Addr addr, Catcher *c, TrafficClass tc = TrafficClass::Gpu,
        int req = 0)
{
    return new MemPacket(addr, 128, false, tc, AccessKind::GlobalData,
                         req, c, 0);
}

} // namespace

TEST(DramTiming, LpddrDerivation)
{
    DramTiming t = lpddr3Timing(1333.0, 32, 128);
    // 1333 Mb/s/pin * 32 bits = 5.332 GB/s; 128 B burst ~ 24 ns.
    EXPECT_NEAR(static_cast<double>(t.tBURST), 24010.0, 200.0);
    EXPECT_GT(t.tRCD, 0u);
    EXPECT_GT(t.tRP, 0u);
    EXPECT_GE(t.tRAS, t.tRCD);
}

TEST(DramChannel, SingleReadLatencyIsRcdPlusClPlusBurst)
{
    Simulation sim;
    Catcher catcher;
    catcher.sim = &sim;
    FrfcfsScheduler sched;
    MemorySystem mem(sim, "mem", params2ch(), sched);

    ASSERT_TRUE(mem.tryAccept(readPkt(0, &catcher)));
    sim.run();
    ASSERT_EQ(catcher.done.size(), 1u);
    const DramTiming &t = mem.params().timing;
    EXPECT_EQ(catcher.done[0].first, t.tRCD + t.tCL + t.tBURST);
    EXPECT_EQ(mem.channel(0).statRowClosedMisses.value(), 1.0);
}

TEST(DramChannel, RowHitsAreFasterThanConflicts)
{
    Simulation sim;
    Catcher catcher;
    catcher.sim = &sim;
    FrfcfsScheduler sched;
    MemorySystem mem(sim, "mem", params2ch(), sched);

    // Same row twice (hit), then a different row in the same bank
    // (conflict).
    ASSERT_TRUE(mem.tryAccept(readPkt(0, &catcher)));
    sim.run();
    ASSERT_TRUE(mem.tryAccept(readPkt(256, &catcher)));
    sim.run();
    ASSERT_TRUE(mem.tryAccept(readPkt(1 << 20, &catcher)));
    sim.run();

    ASSERT_EQ(catcher.done.size(), 3u);
    EXPECT_EQ(mem.channel(0).statRowHits.value(), 1.0);
    EXPECT_EQ(mem.channel(0).statRowConflicts.value(), 1.0);

    Tick hit_latency = catcher.done[1].first - catcher.done[0].first;
    Tick conflict_latency =
        catcher.done[2].first - catcher.done[1].first;
    EXPECT_GT(conflict_latency, hit_latency);
}

TEST(DramChannel, FrfcfsPrefersRowHitOverOlder)
{
    Simulation sim;
    Catcher catcher;
    catcher.sim = &sim;
    FrfcfsScheduler sched;
    MemorySystem mem(sim, "mem", params2ch(), sched);

    // Open row 0 of bank 0.
    ASSERT_TRUE(mem.tryAccept(readPkt(0, &catcher)));
    sim.run();

    // Enqueue a conflicting request first, then a row hit. FR-FCFS
    // must service the hit first.
    Addr conflict = 1 << 20;
    Addr hit = 256;
    ASSERT_TRUE(mem.tryAccept(readPkt(conflict, &catcher)));
    ASSERT_TRUE(mem.tryAccept(readPkt(hit, &catcher)));
    sim.run();

    ASSERT_EQ(catcher.done.size(), 3u);
    EXPECT_EQ(catcher.done[1].second, hit);
    EXPECT_EQ(catcher.done[2].second, conflict);
}

TEST(DramChannel, BytesPerActivationTracksRowReuse)
{
    Simulation sim;
    Catcher catcher;
    catcher.sim = &sim;
    FrfcfsScheduler sched;
    MemorySystem mem(sim, "mem", params2ch(), sched);

    // 8 hits in row 0, then a conflict forces the row closed and
    // samples the bytes-per-activation distribution.
    for (int i = 0; i < 8; ++i)
        ASSERT_TRUE(mem.tryAccept(readPkt(Addr(i) * 256, &catcher)));
    sim.run();
    ASSERT_TRUE(mem.tryAccept(readPkt(1 << 20, &catcher)));
    sim.run();

    ASSERT_EQ(mem.channel(0).statBytesPerActivation.count(), 1u);
    EXPECT_EQ(mem.channel(0).statBytesPerActivation.mean(),
              8.0 * 128.0);
}

TEST(DramChannel, QueueFullRejects)
{
    Simulation sim;
    Catcher catcher;
    catcher.sim = &sim;
    MemorySystemParams mp = params2ch();
    mp.queueCapacity = 4;
    FrfcfsScheduler sched;
    MemorySystem mem(sim, "mem", mp, sched);

    int accepted = 0;
    for (int i = 0; i < 20; ++i) {
        MemPacket *pkt = readPkt(Addr(i) * 4096, &catcher);
        if (mem.tryAccept(pkt))
            ++accepted;
        else
            delete pkt;
    }
    // Both channels' queues (4 each) can be full, plus in-flight.
    EXPECT_LE(accepted, 12);
    sim.run();
}

TEST(DramChannel, PerClassBandwidthAccounting)
{
    Simulation sim;
    Catcher catcher;
    catcher.sim = &sim;
    FrfcfsScheduler sched;
    MemorySystem mem(sim, "mem", params2ch(), sched);

    ASSERT_TRUE(
        mem.tryAccept(readPkt(0, &catcher, TrafficClass::Cpu, 1)));
    ASSERT_TRUE(
        mem.tryAccept(readPkt(4096, &catcher, TrafficClass::Gpu)));
    ASSERT_TRUE(mem.tryAccept(
        readPkt(8192, &catcher, TrafficClass::Display, 101)));
    sim.run();

    EXPECT_EQ(mem.bytesFor(TrafficClass::Cpu), 128u);
    EXPECT_EQ(mem.bytesFor(TrafficClass::Gpu), 128u);
    EXPECT_EQ(mem.bytesFor(TrafficClass::Display), 128u);
}

TEST(Hmc, RoutesByTrafficClass)
{
    Simulation sim;
    Catcher catcher;
    catcher.sim = &sim;
    MemorySystemParams mp = params2ch();
    mp.hmc = true;
    mp.hmcCpuChannels = 1;
    FrfcfsScheduler sched;
    MemorySystem mem(sim, "mem", mp, sched);

    for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE(mem.tryAccept(readPkt(Addr(i) * 128, &catcher,
                                          TrafficClass::Cpu, 0)));
        ASSERT_TRUE(mem.tryAccept(readPkt(Addr(i) * 128, &catcher,
                                          TrafficClass::Gpu)));
    }
    sim.run();

    // All CPU traffic on channel 0, all GPU traffic on channel 1.
    EXPECT_EQ(mem.channel(0).statRequests.value(), 8.0);
    EXPECT_EQ(mem.channel(1).statRequests.value(), 8.0);
    double ch0_cpu = 0, ch1_gpu = 0;
    for (double b : mem.channel(0).statBwCpu.buckets())
        ch0_cpu += b;
    for (double b : mem.channel(1).statBwGpu.buckets())
        ch1_gpu += b;
    EXPECT_EQ(ch0_cpu, 8 * 128.0);
    EXPECT_EQ(ch1_gpu, 8 * 128.0);
}

TEST(Hmc, IpMappingStripesAcrossBanks)
{
    // Under the IP-channel scheme, sequential lines should hit many
    // banks (parallelism) and thus see fewer row hits than the
    // page-striped CPU scheme for a strided stream.
    Simulation sim;
    Catcher catcher;
    catcher.sim = &sim;
    MemorySystemParams mp = params2ch();
    mp.hmc = true;
    FrfcfsScheduler sched;
    MemorySystem mem(sim, "mem", mp, sched);

    for (int i = 0; i < 16; ++i) {
        ASSERT_TRUE(mem.tryAccept(
            readPkt(Addr(i) * 128, &catcher, TrafficClass::Gpu)));
    }
    sim.run();
    // 16 sequential lines cover 8 banks twice: 8 misses + 8 hits at
    // most; verify multiple banks were activated.
    EXPECT_GE(mem.channel(1).statRowClosedMisses.value(), 8.0);
}

class DramRandomTraffic : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(DramRandomTraffic, AllRequestsCompleteExactlyOnce)
{
    Simulation sim;
    Catcher catcher;
    catcher.sim = &sim;
    FrfcfsScheduler sched;
    MemorySystem mem(sim, "mem", params2ch(), sched);
    Random rng(GetParam());

    unsigned sent = 0;
    for (int burst = 0; burst < 50; ++burst) {
        for (int i = 0; i < 10; ++i) {
            Addr addr = (rng.next() & 0xffffff80ULL) & 0x0fffffffULL;
            bool write = rng.chance(0.3);
            auto *pkt = new MemPacket(addr, 128, write,
                                      TrafficClass::Gpu,
                                      AccessKind::GlobalData, 0,
                                      write ? nullptr : &catcher, 0);
            if (mem.tryAccept(pkt))
                sent += write ? 0 : 1;
            else
                delete pkt;
        }
        sim.run();
    }
    EXPECT_EQ(catcher.done.size(), sent);

    // Monotone completion times.
    for (std::size_t i = 1; i < catcher.done.size(); ++i)
        EXPECT_GE(catcher.done[i].first, catcher.done[i - 1].first);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DramRandomTraffic,
                         ::testing::Values(1u, 2u, 3u, 7u, 13u));
