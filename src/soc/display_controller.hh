/**
 * @file
 * Display controller DMA model.
 *
 * Scans the framebuffer out line by line at the refresh rate,
 * prefetching ahead of the scan position. If memory cannot keep up
 * (scanout reaches an unfetched line too often), the controller
 * aborts the frame and retries at the next refresh — the feedback
 * behaviour the paper observed under DASH in case study I ("the
 * display controller aborts the frame and re-tries a new frame
 * later", Fig. 13/14).
 */

#ifndef EMERALD_SOC_DISPLAY_CONTROLLER_HH
#define EMERALD_SOC_DISPLAY_CONTROLLER_HH

#include "mem/dash_scheduler.hh"
#include "sim/packet.hh"
#include "sim/sim_object.hh"

namespace emerald::soc
{

/** Requestor id for the display controller. */
constexpr int displayRequestorId = 101;

struct DisplayParams
{
    Addr fbBase = 0x80000000ULL;
    unsigned width = 320;
    unsigned height = 240;
    unsigned bytesPerPixel = 4;
    Tick refreshPeriod = ticksFromMs(16.6);
    /** Lines the FIFO may run ahead of scanout. */
    unsigned prefetchLines = 4;
    unsigned maxOutstanding = 8;
    /** Scan lines found unfetched before the frame is aborted. */
    unsigned abortThreshold = 8;
};

class DisplayController : public SimObject,
                          public MemClient,
                          public MemRequestor
{
  public:
    DisplayController(Simulation &sim, const std::string &name,
                      const DisplayParams &params, MemSink &downstream,
                      mem::DashCoordinator *dash = nullptr);

    /** Begin refreshing; runs until stop(). */
    void start();
    void stop();

    void memResponse(MemPacket *pkt) override;
    void retryRequest() override;
    std::string requestorName() const override { return name(); }

    /**
     * Watchdog degrade recovery: if a fetch is stuck (a held rejected
     * packet or responses that never arrived), abandon the frame so
     * scanout restarts clean at the next vsync. Counted in
     * soc.display.dropped_frames.
     */
    void onWatchdogDegrade() override;

    void hangDiagnostics(std::ostream &os) const override;

    void serialize(CheckpointOut &out) const override;
    void unserialize(CheckpointIn &in) override;

    /** @{ Statistics. */
    Scalar statFramesCompleted;
    Scalar statFramesAborted;
    Scalar statUnderruns;
    Scalar statBytesFetched;
    Scalar statRequests;
    Scalar statDroppedFrames;
    /** @} */

  private:
    void vsync();
    void scanLine();
    void pump();
    /** Post-acceptance bookkeeping for one fetched packet. */
    void advanceFetchCursor();
    /** Discard a rejected packet held across a frame boundary. */
    void dropRetryPkt();
    unsigned packetsPerLine() const;

    DisplayParams _params;
    MemSink &_downstream;
    mem::DashCoordinator *_dash;
    int _dashIp = -1;

    bool _running = false;
    bool _frameAborted = false;
    unsigned _scanLine = 0;
    unsigned _fetchLine = 0;
    unsigned _fetchPacket = 0;
    /** Fully fetched lines (responses received). */
    unsigned _linesDone = 0;
    unsigned _lineRespRemaining = 0;
    unsigned _outstanding = 0;
    unsigned _underrunsThisFrame = 0;
    /** Guards against re-entrant pump() on synchronous responses. */
    bool _pumping = false;
    /**
     * Packet rejected by memory, held (with its _outstanding slot
     * still reserved) until the sink's retryRequest() wakes us. The
     * controller never polls.
     */
    MemPacket *_retryPkt = nullptr;

    EventFunction _vsyncEvent;
    EventFunction _scanEvent;
};

} // namespace emerald::soc

#endif // EMERALD_SOC_DISPLAY_CONTROLLER_HH
