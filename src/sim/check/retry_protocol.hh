/**
 * @file
 * Verifies the offer/reject/retry state machine of the memory-port
 * protocol (docs/memory_protocol.md) as it runs:
 *
 *  - every rejected offer is paired with exactly one retry
 *    registration before the next protocol action at a later tick;
 *  - a RetryList never holds the same requestor twice (the dedup in
 *    RetryList::add is cross-checked against this mirror, so a
 *    corrupted list aborts instead of double-waking);
 *  - a wake loop that keeps waking the same requestor within one tick
 *    without the retry list shrinking aborts instead of livelocking;
 *  - a sink that keeps accepting fresh offers while a waiter has been
 *    parked on it longer than the lost-wakeup threshold aborts (a
 *    lost or missing retryRequest()).
 *
 * Legal-but-subtle patterns the checker deliberately tolerates: a
 * requestor that abandons its parked packet and re-offers fresh
 * traffic while its stale registration lingers (the display does this
 * at every frame restart), and the resulting registration with a
 * second sink before the first wakes it spuriously.
 */

#ifndef EMERALD_SIM_CHECK_RETRY_PROTOCOL_HH
#define EMERALD_SIM_CHECK_RETRY_PROTOCOL_HH

#include <unordered_map>

#include "sim/types.hh"

namespace emerald
{

class EventQueue;
class MemRequestor;
class RetryList;

namespace fault
{
class FaultDomain;
class FaultInjector;
} // namespace fault

namespace check
{

/** Mirrors every RetryList's membership to cross-check transitions. */
class RetryProtocolChecker
{
  public:
    /**
     * Default lost-wakeup threshold: a waiter parked for 10 simulated
     * milliseconds on a sink that is still accepting fresh traffic is
     * beyond any legitimate congestion backlog in the modeled SoCs.
     */
    static constexpr Tick defaultLostWakeTicks = ticksFromMs(10.0);

    /** Wakes of one requestor within a single tick before aborting. */
    static constexpr unsigned wakeLoopLimit = 1024;

    /**
     * @param domain the owning Simulation's fault domain, consulted
     *        for the active injector so deliberate faults (starved
     *        waiters, suppressed wakes) are not reported as protocol
     *        bugs. Null for bare test checkers.
     */
    explicit RetryProtocolChecker(EventQueue &eq,
                                  fault::FaultDomain *domain = nullptr)
        : _eq(eq), _domain(domain)
    {}

    /** A sink is starting to evaluate an offer. */
    void onOfferStarted(RetryList *list);

    /** A sink accepted an offer (capacity existed at this tick). */
    void onOfferAccepted(RetryList *list);

    /** A sink rejected an offer from @p req. */
    void onOfferRejected(RetryList *list, MemRequestor *req);

    /**
     * RetryList::add ran for @p req; @p deduped is true when the list
     * found @p req already queued and ignored the add.
     */
    void onRegistered(RetryList *list, MemRequestor *req, bool deduped);

    /** @p req was popped from @p list for a wakeup. */
    void onWoken(RetryList *list, MemRequestor *req);

    /**
     * Abort if any rejection is still unpaired or any requestor is
     * still parked. Valid only when nothing can wake them anymore
     * (drained event queue at teardown, or a test that knows the
     * system is idle).
     */
    void verifyQuiescent() const;

    /** Override the lost-wakeup threshold (tests use small values). */
    void setLostWakeThreshold(Tick ticks) { _lostWakeTicks = ticks; }

    std::size_t numWaiting() const { return _waiting.size(); }

    /** Benign re-offers while already registered (dedup'd adds). */
    std::uint64_t numDedupedRegistrations() const { return _dedups; }

  private:
    struct WaitInfo
    {
        RetryList *list;
        Tick since;
    };

    /** Abort if an older rejection was never followed by an add. */
    void checkStaleRejects(Tick now) const;

    /** The domain's active injector, or nullptr. */
    fault::FaultInjector *injector() const;

    /**
     * Latest registration per requestor. A stale entry superseded by
     * a registration with another sink is dropped: the protocol owes
     * that requestor at most a spurious wake from the old list.
     */
    std::unordered_map<MemRequestor *, WaitInfo> _waiting;
    /** Rejections whose matching registration has not arrived yet. */
    std::unordered_map<MemRequestor *, Tick> _pendingReject;

    RetryList *_lastWakeList = nullptr;
    MemRequestor *_lastWakeReq = nullptr;
    Tick _lastWakeTick = 0;
    unsigned _wakeRepeat = 0;
    std::uint64_t _dedups = 0;

    Tick _lostWakeTicks = defaultLostWakeTicks;
    EventQueue &_eq;
    fault::FaultDomain *_domain;
};

} // namespace check
} // namespace emerald

#endif // EMERALD_SIM_CHECK_RETRY_PROTOCOL_HH
