#include "core/clipper.hh"

#include <vector>

namespace emerald::core
{

namespace
{

constexpr float wEpsilon = 1e-5f;

/** Signed distance to the clip plane (>= 0 keeps the vertex). */
float
planeDistance(const ClipVertex &v, int plane)
{
    // plane 0: w >= epsilon; plane 1: z + w >= 0 (near).
    return plane == 0 ? v.pos.w - wEpsilon : v.pos.z + v.pos.w;
}

ClipVertex
lerpVertex(const ClipVertex &a, const ClipVertex &b, float t)
{
    ClipVertex out;
    out.pos.x = a.pos.x + (b.pos.x - a.pos.x) * t;
    out.pos.y = a.pos.y + (b.pos.y - a.pos.y) * t;
    out.pos.z = a.pos.z + (b.pos.z - a.pos.z) * t;
    out.pos.w = a.pos.w + (b.pos.w - a.pos.w) * t;
    for (unsigned i = 0; i < maxVaryings; ++i)
        out.attrs[i] = a.attrs[i] + (b.attrs[i] - a.attrs[i]) * t;
    return out;
}

std::vector<ClipVertex>
clipAgainstPlane(const std::vector<ClipVertex> &poly, int plane)
{
    std::vector<ClipVertex> out;
    const std::size_t n = poly.size();
    for (std::size_t i = 0; i < n; ++i) {
        const ClipVertex &cur = poly[i];
        const ClipVertex &next = poly[(i + 1) % n];
        float dc = planeDistance(cur, plane);
        float dn = planeDistance(next, plane);
        bool cur_in = dc >= 0.0f;
        bool next_in = dn >= 0.0f;
        if (cur_in)
            out.push_back(cur);
        if (cur_in != next_in) {
            float t = dc / (dc - dn);
            out.push_back(lerpVertex(cur, next, t));
        }
    }
    return out;
}

} // namespace

bool
trivialReject(const ClipVertex verts[3])
{
    auto all_outside = [&](auto pred) {
        return pred(verts[0]) && pred(verts[1]) && pred(verts[2]);
    };
    if (all_outside([](const ClipVertex &v) { return v.pos.x < -v.pos.w; }))
        return true;
    if (all_outside([](const ClipVertex &v) { return v.pos.x > v.pos.w; }))
        return true;
    if (all_outside([](const ClipVertex &v) { return v.pos.y < -v.pos.w; }))
        return true;
    if (all_outside([](const ClipVertex &v) { return v.pos.y > v.pos.w; }))
        return true;
    if (all_outside([](const ClipVertex &v) { return v.pos.z < -v.pos.w; }))
        return true;
    if (all_outside([](const ClipVertex &v) { return v.pos.z > v.pos.w; }))
        return true;
    return false;
}

bool
clipTriangle(const ClipVertex verts[3], ClipResult &out)
{
    out.count = 0;
    if (trivialReject(verts))
        return false;

    bool needs_clip = false;
    for (int i = 0; i < 3; ++i) {
        if (planeDistance(verts[i], 0) < 0.0f ||
            planeDistance(verts[i], 1) < 0.0f) {
            needs_clip = true;
        }
    }
    if (!needs_clip) {
        out.count = 1;
        out.tris[0] = {verts[0], verts[1], verts[2]};
        return true;
    }

    std::vector<ClipVertex> poly = {verts[0], verts[1], verts[2]};
    for (int plane = 0; plane < 2 && !poly.empty(); ++plane)
        poly = clipAgainstPlane(poly, plane);
    if (poly.size() < 3)
        return false;

    // Fan triangulation preserves winding.
    for (std::size_t i = 1; i + 1 < poly.size() && out.count < 3; ++i) {
        out.tris[out.count] = {poly[0], poly[i], poly[i + 1]};
        ++out.count;
    }
    return out.count > 0;
}

} // namespace emerald::core
