/**
 * @file
 * Per-simulation context carrier for the protocol seams.
 *
 * The watchdog and the fault injector both need a global view of
 * "who is parked waiting for a retry" — information that otherwise
 * only exists scattered across every MemSink. RetryList registers
 * itself with the FaultDomain it is constructed against (see
 * sim/packet.cc), and the Simulation owns one domain, so walking
 * Simulation::faultDomain().lists() enumerates every retry list in
 * the model with zero per-offer cost.
 *
 * The domain also carries the per-Simulation pointers the protocol
 * seams consult on the hot path: the active FaultInjector and (in
 * EMERALD_CHECKS builds) the CheckContext. MemSink has no back-pointer
 * to its Simulation, so its RetryList resolves both through the domain
 * it registered with — there is no process-global state anywhere on
 * this path. Lists constructed without a domain (bare tests) stay
 * unregistered and see neither injection nor checking.
 */

#ifndef EMERALD_SIM_FAULT_DOMAIN_HH
#define EMERALD_SIM_FAULT_DOMAIN_HH

#include <vector>

namespace emerald
{

class RetryList;

namespace check
{
class CheckContext;
} // namespace check

namespace fault
{

class FaultInjector;

/** Registry of the RetryLists constructed against this domain, plus
 *  the per-Simulation seam context. Owned by Simulation; see file
 *  comment. */
class FaultDomain
{
  public:
    FaultDomain() = default;
    ~FaultDomain() = default;

    FaultDomain(const FaultDomain &) = delete;
    FaultDomain &operator=(const FaultDomain &) = delete;

    void registerList(RetryList *list);
    void unregisterList(RetryList *list);

    /** Live lists in construction order (deterministic reports). */
    const std::vector<RetryList *> &lists() const { return _lists; }

    /** @{ Seam context, set by the owning Simulation. */
    void setInjector(FaultInjector *inj) { _injector = inj; }
    FaultInjector *injector() const { return _injector; }

    void setCheckContext(check::CheckContext *ctx) { _checkContext = ctx; }
    check::CheckContext *checkContext() const { return _checkContext; }
    /** @} */

  private:
    std::vector<RetryList *> _lists;
    /** Active injector, or nullptr when faults are off. */
    FaultInjector *_injector = nullptr;
    /** This Simulation's checkers; null outside EMERALD_CHECKS. */
    check::CheckContext *_checkContext = nullptr;
};

} // namespace fault
} // namespace emerald

#endif // EMERALD_SIM_FAULT_DOMAIN_HH
