#include "sweep/grid.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "sim/config.hh"
#include "sim/logging.hh"

namespace emerald
{
namespace sweep
{

namespace
{

std::string
trim(const std::string &text)
{
    auto begin = text.find_first_not_of(" \t\r");
    if (begin == std::string::npos)
        return "";
    auto end = text.find_last_not_of(" \t\r");
    return text.substr(begin, end - begin + 1);
}

/**
 * Split on @p sep, trimming each field; empty fields are fatal.
 *
 * Separators nested inside (), [] or {} do not split, and a
 * backslash escapes the next character, so structured values — a
 * fault plan's `offer-reject(match=l2,prob=0.5)`, say — sweep as
 * single axis values instead of being sheared at their commas.
 */
std::vector<std::string>
splitList(const std::string &text, char sep, int line,
          const char *what)
{
    std::vector<std::string> out;
    std::string field;
    auto flush = [&] {
        std::string trimmed = trim(field);
        fatal_if(trimmed.empty(), "sweep spec line %d: empty %s in '%s'",
                 line, what, text.c_str());
        out.push_back(std::move(trimmed));
        field.clear();
    };
    int depth = 0;
    bool escaped = false;
    for (char c : text) {
        if (escaped) {
            field.push_back(c);
            escaped = false;
            continue;
        }
        if (c == '\\') {
            escaped = true;
            continue;
        }
        if (c == '(' || c == '[' || c == '{') {
            ++depth;
        } else if (c == ')' || c == ']' || c == '}') {
            --depth;
            fatal_if(depth < 0,
                     "sweep spec line %d: unbalanced brackets in '%s'",
                     line, text.c_str());
        } else if (c == sep && depth == 0) {
            flush();
            continue;
        }
        field.push_back(c);
    }
    fatal_if(escaped, "sweep spec line %d: dangling backslash in '%s'",
             line, text.c_str());
    fatal_if(depth != 0,
             "sweep spec line %d: unbalanced brackets in '%s'", line,
             text.c_str());
    flush();
    return out;
}

std::pair<std::string, std::string>
splitPair(const std::string &text, int line)
{
    auto eq = text.find('=');
    fatal_if(eq == std::string::npos,
             "sweep spec line %d: expected key=value, got '%s'", line,
             text.c_str());
    std::string key = trim(text.substr(0, eq));
    std::string value = trim(text.substr(eq + 1));
    fatal_if(key.empty(), "sweep spec line %d: empty key in '%s'",
             line, text.c_str());
    return {key, value};
}

} // namespace

SweepSpec
parseSweepSpec(const std::string &text)
{
    SweepSpec spec;
    std::istringstream in(text);
    std::string raw;
    int lineno = 0;
    while (std::getline(in, raw)) {
        ++lineno;
        auto hash = raw.find('#');
        if (hash != std::string::npos)
            raw.erase(hash);
        std::string line = trim(raw);
        if (line.empty())
            continue;
        auto [directive, value] = splitPair(line, lineno);
        fatal_if(value.empty(), "sweep spec line %d: '%s' has no value",
                 lineno, directive.c_str());
        if (directive == "scenario") {
            spec.scenario = value;
        } else if (directive == "restore") {
            spec.restoreDir = value;
        } else if (directive == "replay") {
            spec.replayDir = value;
        } else if (directive == "skip") {
            std::vector<std::pair<std::string, std::string>> pairs;
            for (const std::string &field :
                 splitList(value, ',', lineno, "skip term"))
                pairs.push_back(splitPair(field, lineno));
            spec.skips.push_back(std::move(pairs));
        } else if (directive.rfind("fixed.", 0) == 0) {
            std::string key = directive.substr(6);
            fatal_if(key.empty(),
                     "sweep spec line %d: 'fixed.' needs a key",
                     lineno);
            spec.fixed.emplace_back(key, value);
        } else if (directive.rfind("axis.", 0) == 0) {
            std::string key = directive.substr(5);
            fatal_if(key.empty(),
                     "sweep spec line %d: 'axis.' needs a key", lineno);
            spec.axes.emplace_back(
                key, splitList(value, ',', lineno, "axis value"));
        } else {
            fatal("sweep spec line %d: unknown directive '%s' (want "
                  "scenario, fixed.<key>, axis.<key>, skip, restore "
                  "or replay)",
                  lineno, directive.c_str());
        }
    }
    return spec;
}

SweepSpec
loadSweepSpec(const std::string &path)
{
    std::ifstream in(path);
    fatal_if(!in, "cannot read sweep spec '%s'", path.c_str());
    std::ostringstream text;
    text << in.rdbuf();
    return parseSweepSpec(text.str());
}

namespace
{

bool
pointMatches(
    const Config &cfg,
    const std::vector<std::pair<std::string, std::string>> &pairs)
{
    for (const auto &[key, value] : pairs)
        if (cfg.getString(key, "") != value)
            return false;
    return true;
}

} // namespace

std::vector<SweepPoint>
expandGrid(const SweepSpec &spec)
{
    // Duplicate keys would silently shadow each other in the child's
    // Config; reject them up front.
    std::vector<std::string> seen;
    auto claim = [&seen](const std::string &key) {
        fatal_if(std::find(seen.begin(), seen.end(), key) != seen.end(),
                 "sweep spec: key '%s' appears more than once across "
                 "fixed/axis directives", key.c_str());
        seen.push_back(key);
    };
    for (const auto &[key, value] : spec.fixed)
        claim(key);
    for (const auto &[key, values] : spec.axes) {
        claim(key);
        fatal_if(values.empty(), "sweep spec: axis '%s' has no values",
                 key.c_str());
    }

    std::size_t total = 1;
    for (const auto &[key, values] : spec.axes)
        total *= values.size();

    std::vector<SweepPoint> points;
    points.reserve(total);
    // Odometer over the axes; the last axis varies fastest.
    std::vector<std::size_t> index(spec.axes.size(), 0);
    for (std::size_t n = 0; n < total; ++n) {
        Config cfg;
        for (const auto &[key, value] : spec.fixed)
            cfg.set(key, value);
        for (std::size_t a = 0; a < spec.axes.size(); ++a)
            cfg.set(spec.axes[a].first,
                    spec.axes[a].second[index[a]]);

        bool skipped = false;
        for (const auto &pairs : spec.skips)
            if (pointMatches(cfg, pairs)) {
                skipped = true;
                break;
            }
        if (!skipped) {
            SweepPoint point;
            point.params = sweepPointParams(cfg);
            point.fingerprintHex = sweepPointFingerprintHex(cfg);
            points.push_back(std::move(point));
        }

        for (std::size_t a = spec.axes.size(); a-- > 0;) {
            if (++index[a] < spec.axes[a].second.size())
                break;
            index[a] = 0;
        }
    }
    return points;
}

std::string
specHash(const SweepSpec &spec)
{
    // FNV-1a over a canonical rendering of the grid definition —
    // the same scheme sweepPointFingerprint uses for point identity.
    std::uint64_t hash = 1469598103934665603ull;
    auto mix = [&hash](const std::string &text) {
        for (unsigned char c : text) {
            hash ^= c;
            hash *= 1099511628211ull;
        }
    };
    mix("scenario=" + spec.scenario + "\n");
    for (const auto &[key, value] : spec.fixed)
        mix("fixed." + key + "=" + value + "\n");
    for (const auto &[key, values] : spec.axes) {
        mix("axis." + key + "=");
        for (const std::string &value : values)
            mix(value + ",");
        mix("\n");
    }
    for (const auto &pairs : spec.skips) {
        mix("skip=");
        for (const auto &[key, value] : pairs)
            mix(key + "=" + value + ",");
        mix("\n");
    }
    return strprintf("%016llx", (unsigned long long)hash);
}

} // namespace sweep
} // namespace emerald
