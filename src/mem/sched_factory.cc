#include "mem/sched_factory.hh"

#include <map>

#include "mem/frfcfs_scheduler.hh"
#include "sim/logging.hh"
#include "sim/nearest.hh"

namespace emerald::mem
{

namespace
{

using Registry = std::map<std::string, MemSchedulerFactory>;

/** Function-local registry, populated on first use (see header). */
Registry &
registry()
{
    static Registry reg = [] {
        Registry builtins;
        builtins["frfcfs"] = [](const MemSchedContext &) {
            MemSchedBundle bundle;
            bundle.scheduler = std::make_unique<FrfcfsScheduler>();
            return bundle;
        };
        builtins["dash"] = [](const MemSchedContext &ctx) {
            MemSchedBundle bundle;
            bundle.coordinator = std::make_unique<DashCoordinator>(
                ctx.sim, ctx.coordinatorName, ctx.dashParams);
            bundle.scheduler =
                std::make_unique<DashScheduler>(*bundle.coordinator);
            return bundle;
        };
        return builtins;
    }();
    return reg;
}

} // namespace

void
registerMemScheduler(const std::string &policy,
                     MemSchedulerFactory factory)
{
    auto [it, inserted] = registry().emplace(policy, std::move(factory));
    (void)it;
    fatal_if(!inserted, "memory scheduler policy '%s' registered twice",
             policy.c_str());
}

MemSchedBundle
createMemScheduler(const std::string &policy, const MemSchedContext &ctx)
{
    const std::string &name =
        policy.empty() ? defaultMemSchedPolicy : policy;
    auto it = registry().find(name);
    if (it == registry().end()) {
        std::string suggestion =
            nearestMatch(name, memSchedulerPolicies());
        std::string known;
        for (const std::string &p : memSchedulerPolicies())
            known += (known.empty() ? "" : ", ") + p;
        if (!suggestion.empty()) {
            fatal("unknown memory scheduler policy '%s' — did you "
                  "mean '%s'? (known: %s)",
                  name.c_str(), suggestion.c_str(), known.c_str());
        }
        fatal("unknown memory scheduler policy '%s' (known: %s)",
              name.c_str(), known.c_str());
    }
    MemSchedBundle bundle = it->second(ctx);
    fatal_if(!bundle.scheduler,
             "memory scheduler policy '%s' built no scheduler",
             name.c_str());
    return bundle;
}

std::vector<std::string>
memSchedulerPolicies()
{
    std::vector<std::string> names;
    for (const auto &[name, factory] : registry())
        names.push_back(name);
    return names;
}

} // namespace emerald::mem
