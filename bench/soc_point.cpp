/**
 * @file
 * soc_point: the sweep unit. Runs exactly one SocTop whose every
 * parameter comes from the command line (one point of a sweep grid)
 * and records absolute frame times, event counts, the event-stream
 * hash and the full stats tree. emerald_sweep expands a grid spec
 * into one soc_point invocation per point (docs/sweeps.md); it is
 * not a paper figure, so run_benches.sh skips it (kind = Aux).
 *
 * Axes: --model, --config, --highload, --frames, --prep, --width,
 * --height, --fps (GPU frame period), --channels (DRAM channels),
 * the --npu-* accelerator axes (soc/configs.hh applyNpuConfig),
 * plus the shared --warp-sched/--mem-sched/--fault-plan/... keys the
 * SimulationBuilder reads.
 */

#include <chrono>

#include "harness.hh"
#include "registry.hh"

using namespace emerald;
using namespace emerald::bench;

namespace
{

scenes::WorkloadId
workloadFromName(const std::string &name)
{
    for (auto list : {caseStudy1Models(), caseStudy2Workloads()})
        for (scenes::WorkloadId id : list)
            if (name == scenes::workloadName(id))
                return id;
    fatal("soc_point: unknown --model '%s' (use a workloadName like "
          "M2-cube)", name.c_str());
}

soc::MemConfig
memConfigFromName(const std::string &name)
{
    for (soc::MemConfig config : allMemConfigs())
        if (name == soc::memConfigName(config))
            return config;
    fatal("soc_point: unknown --config '%s' (BAS|DCB|DTB|HMC)",
          name.c_str());
}

int
runScenario(int argc, char **argv)
{
    BenchHarness harness(argc, argv, "soc_point");
    const Config &cfg = harness.cfg;
    BenchResults &results = *harness.results;

    soc::SocParams p = caseStudy1Params(
        workloadFromName(cfg.getString("model", "M2-cube")),
        memConfigFromName(cfg.getString("config", "BAS")),
        cfg.getBool("highload", true));
    p.frames = static_cast<unsigned>(
        cfg.getU64("frames", harness.quick ? 3 : p.frames));
    p.cpuPrepRequests = cfg.getU64("prep", p.cpuPrepRequests);
    p.fbWidth = static_cast<unsigned>(cfg.getU64("width", p.fbWidth));
    p.fbHeight =
        static_cast<unsigned>(cfg.getU64("height", p.fbHeight));
    p.dramChannels = static_cast<unsigned>(
        cfg.getU64("channels", p.dramChannels));
    fatal_if(p.dramChannels < 1u ||
                 (p.memConfig == soc::MemConfig::HMC &&
                  p.dramChannels < 2u),
             "soc_point: --channels=%u is too few for --config=%s",
             p.dramChannels,
             soc::memConfigName(p.memConfig));
    double fps = cfg.getDouble("fps", 0.0);
    if (fps > 0.0)
        p.gpuFramePeriod = ticksFromMs(1000.0 / fps);
    soc::applyNpuConfig(p, cfg);

    // One checkpoint/replay scope per point. The fingerprint-keyed
    // subdir (builderFor) keeps same-label points apart; the replay
    // root gets the per-model subdir fig12 capture runs produce.
    SimulationBuilder builder =
        harness.builderFor(soc::memConfigName(p.memConfig));
    std::string model_dir = "/";
    model_dir += scenes::workloadName(p.model);
    std::string capture_root = cfg.getString("capture-trace", "");
    if (!capture_root.empty())
        builder.captureTrace(capture_root + model_dir);
    std::string replay_root = cfg.getString("replay-trace", "");
    if (!replay_root.empty())
        builder.replayTrace(replay_root + model_dir);

    soc::SocTop soc(p, builder);
    auto wall_start = std::chrono::steady_clock::now();
    soc.run();
    double wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - wall_start)
                         .count();

    results.record("gpu_ms", soc.meanGpuFrameMs());
    results.record("total_ms", soc.meanTotalFrameMs());
    results.record("wall_ms", wall_ms);
    results.record("events",
                   static_cast<double>(
                       soc.sim().eventQueue().numProcessed()));
    results.record("event_hash",
                   static_cast<double>(soc.sim().determinismHash() &
                                       ((1ULL << 53) - 1)));
    if (soc.npuCamera()) {
        results.record("npu_deadline_misses",
                       soc.npuCamera()->statDeadlineMisses.value());
        results.record("npu_dropped",
                       soc.npuCamera()->statDropped.value());
        results.record("npu_completed",
                       soc.npuCamera()->statCompleted.value());
    }
    results.addSimStats(soc.sim());

    std::printf("soc_point %s/%s: gpu %.3f ms, total %.3f ms "
                "(%.0f ms wall)\n",
                scenes::workloadName(p.model),
                soc::memConfigName(p.memConfig), soc.meanGpuFrameMs(),
                soc.meanTotalFrameMs(), wall_ms);
    return 0;
}

const RegisterScenario reg{{
    .name = "soc_point",
    .desc = "one SocTop run, fully parameterized — the sweep unit",
    .axes = {"model", "config", "highload", "frames", "prep", "width",
             "height", "fps", "channels", "warp-sched", "mem-sched",
             "npu", "npu-tile", "npu-model", "npu-fps", "npu-frames",
             "npu-queue-depth", "npu-dma-outstanding",
             "npu-scratch-kb", "quick"},
    .expectedShape = "one fully-parameterized design point; no fixed shape",
    .run = runScenario,
    .kind = ScenarioKind::Aux,
}};

} // namespace
