/**
 * @file
 * Tests for the robustness layer (src/sim/fault/): the --fault-plan
 * parser, the seeded FaultInjector, the progress watchdog in both
 * abort and degrade modes, and the Config unknown-key validation.
 *
 * The hang tests build a real deadlock — a requestor parked on a
 * RetryList whose wakeup never arrives — and assert the watchdog
 * either names the parked waiter in its report (abort mode) or
 * force-wakes it and lets traffic complete (degrade mode). The soak
 * test runs the paper's Fig. 12 SoC configuration under a random
 * multi-seam fault campaign and requires it to finish with zero
 * checker aborts.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/config.hh"
#include "sim/fault/fault_injector.hh"
#include "sim/fault/fault_plan.hh"
#include "sim/fault/watchdog.hh"
#include "sim/packet.hh"
#include "sim/simulation.hh"
#include "sim/simulation_builder.hh"
#include "soc/soc_top.hh"

namespace emerald
{
namespace
{

using fault::FaultKind;
using fault::FaultPlan;
using fault::FaultSite;

// Plan grammar ---------------------------------------------------------

TEST(FaultPlanTest, EmptyStringYieldsEmptyPlan)
{
    EXPECT_TRUE(FaultPlan::parse("").empty());
    EXPECT_TRUE(FaultPlan::parse("  ;  ; ").empty());
}

TEST(FaultPlanTest, ParsesAllKindsAndKeys)
{
    FaultPlan plan = FaultPlan::parse(
        "offer-burst(match=dram,start=1us,len=500ns,period=2us,"
        "prob=0.5,count=10);"
        "dram-stall(len=1us);"
        "link-delay(delay=250ns);"
        "dup-wake;"
        "wake-suppress(count=1)");
    ASSERT_EQ(plan.sites().size(), 5u);

    const FaultSite &burst = plan.sites()[0];
    EXPECT_EQ(burst.kind, FaultKind::OfferBurst);
    EXPECT_EQ(burst.match, "dram");
    EXPECT_EQ(burst.start, ticksFromUs(1.0));
    EXPECT_EQ(burst.len, ticksFromNs(500.0));
    EXPECT_EQ(burst.period, ticksFromUs(2.0));
    EXPECT_DOUBLE_EQ(burst.prob, 0.5);
    EXPECT_EQ(burst.count, 10u);

    EXPECT_EQ(plan.sites()[1].kind, FaultKind::DramStall);
    EXPECT_EQ(plan.sites()[2].delay, ticksFromNs(250.0));
    EXPECT_EQ(plan.sites()[3].kind, FaultKind::DupWake);
    EXPECT_EQ(plan.sites()[4].count, 1u);
}

TEST(FaultPlanTest, WindowMath)
{
    FaultPlan plan =
        FaultPlan::parse("offer-burst(start=100,len=10,period=50)");
    const FaultSite &s = plan.sites()[0];
    EXPECT_FALSE(s.activeAt(99));
    EXPECT_TRUE(s.activeAt(100));
    EXPECT_TRUE(s.activeAt(109));
    EXPECT_FALSE(s.activeAt(110));
    EXPECT_TRUE(s.activeAt(150)); // Next period.
    EXPECT_EQ(s.windowEnd(105), 110u);
    EXPECT_EQ(s.windowEnd(152), 160u);
}

TEST(FaultPlanTest, MatchFilter)
{
    FaultPlan plan = FaultPlan::parse("dram-stall(match=ch0,len=1us)");
    EXPECT_TRUE(plan.sites()[0].matches("dram.ch0"));
    EXPECT_FALSE(plan.sites()[0].matches("dram.ch1"));
    FaultPlan all = FaultPlan::parse("dup-wake");
    EXPECT_TRUE(all.sites()[0].matches("anything"));
}

TEST(FaultPlanTest, DurationUnits)
{
    EXPECT_EQ(fault::parseDuration("1000", "t"), 1000u);
    EXPECT_EQ(fault::parseDuration("1ns", "t"), ticksFromNs(1.0));
    EXPECT_EQ(fault::parseDuration("2.5us", "t"), ticksFromUs(2.5));
    EXPECT_EQ(fault::parseDuration("3ms", "t"), ticksFromMs(3.0));
}

using FaultPlanDeathTest = ::testing::Test;

TEST(FaultPlanDeathTest, RejectsBadSyntax)
{
    EXPECT_DEATH(FaultPlan::parse("bit-flip(prob=1)"),
                 "unknown fault kind");
    EXPECT_DEATH(FaultPlan::parse("offer-burst(prob=0.5"),
                 "missing '\\)'");
    EXPECT_DEATH(FaultPlan::parse("offer-burst(prob=2.0)"), "bad prob");
    EXPECT_DEATH(FaultPlan::parse("offer-burst(oops=1)"),
                 "unknown key");
    EXPECT_DEATH(FaultPlan::parse("offer-burst(prob)"),
                 "expected key=value");
    EXPECT_DEATH(FaultPlan::parse("dram-stall"), "requires len>0");
    EXPECT_DEATH(FaultPlan::parse("offer-burst(period=1us)"),
                 "period without len");
    EXPECT_DEATH(FaultPlan::parse("offer-burst(len=2us,period=1us)"),
                 "len must not exceed period");
    EXPECT_DEATH(fault::parseDuration("1 parsec", "--watchdog-ticks"),
                 "bad duration suffix");
}

// Config unknown-key validation ----------------------------------------

using ConfigDeathTest = ::testing::Test;

TEST(ConfigDeathTest, UnknownKeySuggestsNearMiss)
{
    Config cfg;
    const char *argv[] = {"prog", "--fault-pln=dup-wake"};
    EXPECT_DEATH(cfg.parseArgs(2, const_cast<char **>(argv)),
                 "did you mean '--fault-plan'");
}

TEST(ConfigDeathTest, UnknownKeyWithoutNeighborStillRejected)
{
    Config cfg;
    const char *argv[] = {"prog", "--zzqqxx=1"};
    EXPECT_DEATH(cfg.parseArgs(2, const_cast<char **>(argv)),
                 "unknown option '--zzqqxx'");
}

TEST(ConfigTest, AllowUnknownArgsOptsOut)
{
    Config cfg;
    const char *argv[] = {"prog", "--allow-unknown-args",
                          "--totally-custom=7"};
    cfg.parseArgs(3, const_cast<char **>(argv));
    EXPECT_EQ(cfg.getU64("totally-custom", 0), 7u);
}

TEST(ConfigTest, KnownKeysParseClean)
{
    Config cfg;
    const char *argv[] = {"prog", "--fault-plan=dup-wake",
                          "--fault-seed=42", "--watchdog-ticks=1ms",
                          "--watchdog-mode=degrade"};
    cfg.parseArgs(5, const_cast<char **>(argv));
    EXPECT_EQ(cfg.getString("fault-plan", ""), "dup-wake");
    EXPECT_EQ(cfg.getU64("fault-seed", 0), 42u);
    EXPECT_EQ(cfg.getString("watchdog-mode", ""), "degrade");
}

// Zero-cost when off ---------------------------------------------------

TEST(FaultOffTest, DefaultSimulationHasNoInjectorOrWatchdog)
{
    Simulation sim;
    EXPECT_EQ(sim.faultInjector(), nullptr);
    EXPECT_EQ(sim.watchdog(), nullptr);
    EXPECT_EQ(sim.faultDomain().injector(), nullptr);
}

TEST(FaultOffTest, EmptyPlanConfiguresNothing)
{
    Simulation sim;
    sim.configureFaults("", 1);
    EXPECT_EQ(sim.faultInjector(), nullptr);
    EXPECT_EQ(sim.faultDomain().injector(), nullptr);
}

// Watchdog -------------------------------------------------------------

MemPacket *
allocPacket(Simulation &sim, Addr addr = 0x1000)
{
    return sim.packetPool().alloc(addr, 64u, false, TrafficClass::Cpu,
                                  AccessKind::CpuData, 0);
}

/** Rejects everything; the base offer() parks the requestor. */
class FullSink : public MemSink
{
  public:
    explicit FullSink(Simulation &sim) : MemSink(sim)
    {
        setSinkName("test_sink");
    }

    bool tryAccept(MemPacket *) override { return false; }

    void drainWaiters() { while (wakeOneRetry()) {} }
};

class NamedRequestor : public MemRequestor
{
  public:
    void retryRequest() override {}

    std::string requestorName() const override { return "starved_cpu"; }
};

TEST(WatchdogTest, CleanRunNoFalsePositive)
{
    Simulation sim;
    sim.enableWatchdog(ticksFromUs(10.0), fault::WatchdogMode::Abort);
    ASSERT_NE(sim.watchdog(), nullptr);

    // Steady traffic: a packet allocated and freed every 5us keeps the
    // completion counter moving across every heartbeat.
    int remaining = 20;
    EventFunction tick(
        [&] {
            freePacket(allocPacket(sim));
            if (--remaining > 0)
                sim.eventQueue().schedule(tick, sim.curTick() +
                                          ticksFromUs(5.0));
        },
        "traffic");
    sim.eventQueue().schedule(tick, ticksFromUs(1.0));
    sim.run();

    EXPECT_EQ(remaining, 0);
    EXPECT_EQ(sim.watchdog()->statHangs.value(), 0.0);
    EXPECT_GT(sim.watchdog()->statChecks.value(), 0.0);
}

TEST(WatchdogTest, HeartbeatDoesNotKeepFinishedSimAlive)
{
    Simulation sim;
    sim.enableWatchdog(ticksFromUs(1.0), fault::WatchdogMode::Abort);
    sim.run(); // Must return: the heartbeat re-arms only with company.
    EXPECT_GE(sim.watchdog()->statChecks.value(), 1.0);
}

using WatchdogDeathTest = ::testing::Test;

TEST(WatchdogDeathTest, HangReportNamesParkedWaiter)
{
    Simulation sim;
    FullSink sink(sim);
    NamedRequestor req;
    MemPacket *pkt = allocPacket(sim);
    ASSERT_FALSE(sink.offer(pkt, req)); // Parks req on test_sink.

    sim.enableWatchdog(ticksFromUs(5.0), fault::WatchdogMode::Abort);
    // A suppressed wakeup hangs silently: nothing will ever wake req,
    // so the first heartbeat finds zero completions and a parked
    // waiter, and the report must name both sides of the seam.
    EXPECT_DEATH(sim.run(),
                 "PROGRESS WATCHDOG.*test_sink.*starved_cpu");

    // The death ran in a forked child; unwind the parent's copy of the
    // deadlock so teardown sees a quiescent protocol and empty pool.
    sink.drainWaiters();
    freePacket(pkt);
}

/**
 * Capacity-1 sink that services its packet 10us after accepting it,
 * then wakes one parked requestor — the canonical backpressure loop.
 */
class SlowSink : public MemSink
{
  public:
    explicit SlowSink(Simulation &sim) : MemSink(sim), _sim(sim)
    {
        setSinkName("slow_sink");
    }

    bool
    tryAccept(MemPacket *pkt) override
    {
        if (_held)
            return false;
        _held = pkt;
        EventFunction *done = new EventFunction(
            [this] {
                completePacket(_held);
                _held = nullptr;
                wakeOneRetry();
            },
            "slow_sink_done");
        _sim.eventQueue().schedule(*done, _sim.curTick() + ticksFromUs(10.0));
        return true;
    }

  private:
    Simulation &_sim;
    MemPacket *_held = nullptr;
};

/** Offers one packet; re-offers whenever the sink wakes it. */
class RetryingRequestor : public MemRequestor
{
  public:
    RetryingRequestor(SlowSink &sink, MemPacket *pkt)
        : _sink(sink), _pkt(pkt)
    {
    }

    void
    send()
    {
        if (_sink.offer(_pkt, *this))
            _pkt = nullptr;
    }

    void retryRequest() override
    {
        if (_pkt)
            send();
    }

    std::string requestorName() const override { return "retry_cpu"; }

    bool delivered() const { return _pkt == nullptr; }

  private:
    SlowSink &_sink;
    MemPacket *_pkt;
};

TEST(WatchdogTest, WakeSuppressDegradeForcesWakesAndRecovers)
{
    Simulation sim;
    // Swallow the first natural wakeup; the degrade watchdog must
    // force-wake the parked requestor so its packet still delivers.
    sim.configureFaults("wake-suppress(count=1)", 7);
    sim.enableWatchdog(ticksFromUs(4.0), fault::WatchdogMode::Degrade);

    SlowSink sink(sim);
    MemPacket *pktA = allocPacket(sim, 0x1000);
    MemPacket *pktB = allocPacket(sim, 0x2000);
    RetryingRequestor reqA(sink, pktA);
    RetryingRequestor reqB(sink, pktB);

    // Keep the event queue alive long enough for the watchdog to keep
    // re-arming across the recovery (it never self-perpetuates).
    int ticks = 20;
    EventFunction keepAlive(
        [&] {
            if (--ticks > 0)
                sim.eventQueue().schedule(keepAlive, sim.curTick() +
                                          ticksFromUs(10.0));
        },
        "keep_alive");
    sim.eventQueue().schedule(keepAlive, ticksFromUs(1.0));

    EventFunction start(
        [&] {
            reqA.send(); // Accepted; sink busy for 10us.
            reqB.send(); // Rejected; parked on slow_sink.
        },
        "start_traffic");
    sim.eventQueue().schedule(start, 1);
    sim.run();

    EXPECT_TRUE(reqA.delivered());
    EXPECT_TRUE(reqB.delivered());
    ASSERT_NE(sim.watchdog(), nullptr);
    EXPECT_GE(sim.watchdog()->statHangs.value(), 1.0);
    EXPECT_GE(sim.watchdog()->statForcedWakes.value(), 1.0);
    ASSERT_NE(sim.faultInjector(), nullptr);
    EXPECT_EQ(sim.faultInjector()->statWakesSuppressed.value(), 1.0);
    EXPECT_EQ(sim.packetPool().live(), 0u);
}

TEST(WatchdogTest, StaleFrontSweepRecoversPartialStarvation)
{
    Simulation sim;
    sim.configureFaults("wake-suppress(count=1)", 9);
    sim.enableWatchdog(ticksFromUs(4.0), fault::WatchdogMode::Degrade);

    SlowSink sink(sim);
    MemPacket *pktA = allocPacket(sim, 0x1000);
    MemPacket *pktB = allocPacket(sim, 0x2000);
    RetryingRequestor reqA(sink, pktA);
    RetryingRequestor reqB(sink, pktB);

    // Unrelated traffic keeps the global completion counter moving on
    // every heartbeat, so the hang condition (zero completions) never
    // holds — only the stale-front sweep can rescue the starved
    // waiter.
    int churn = 25;
    EventFunction traffic(
        [&] {
            freePacket(allocPacket(sim, 0x9000));
            if (--churn > 0)
                sim.eventQueue().schedule(traffic, sim.curTick() +
                                          ticksFromUs(3.0));
        },
        "churn");
    sim.eventQueue().schedule(traffic, ticksFromUs(2.0));

    EventFunction start(
        [&] {
            reqA.send(); // Accepted; sink busy for 10us.
            reqB.send(); // Rejected; parked — its wake gets swallowed.
        },
        "start_traffic");
    sim.eventQueue().schedule(start, 1);
    sim.run();

    EXPECT_TRUE(reqA.delivered());
    EXPECT_TRUE(reqB.delivered());
    EXPECT_EQ(sim.watchdog()->statHangs.value(), 0.0);
    EXPECT_GE(sim.watchdog()->statStaleWakes.value(), 1.0);
    EXPECT_EQ(sim.faultInjector()->statWakesSuppressed.value(), 1.0);
    EXPECT_EQ(sim.packetPool().live(), 0u);
}

/**
 * Re-offers to a sink that never accepts: every force-wake bounces
 * straight back onto the retry list. The degrade watchdog's per-waiter
 * cap exists exactly for this shape of deterministic hang.
 */
class StubbornRequestor : public MemRequestor
{
  public:
    StubbornRequestor(FullSink &sink, MemPacket *pkt)
        : _sink(sink), _pkt(pkt)
    {
    }

    void send() { _sink.offer(_pkt, *this); }
    void retryRequest() override { send(); }
    std::string requestorName() const override { return "stubborn_cpu"; }

    MemPacket *packet() { return _pkt; }

  private:
    FullSink &_sink;
    MemPacket *_pkt;
};

TEST(WatchdogDeathTest, DegradeEscalatesAfterForcedWakeCapAndWritesReport)
{
    Simulation sim;
    std::string report =
        ::testing::TempDir() + "emerald_degrade_escalation.json";
    std::remove(report.c_str());
    sim.setHangReportPath(report);
    sim.enableWatchdog(ticksFromUs(4.0), fault::WatchdogMode::Degrade);

    FullSink sink(sim);
    StubbornRequestor req(sink, allocPacket(sim));

    // No completions ever: each heartbeat force-wakes the lone parked
    // waiter, which re-parks immediately. Keep the queue alive long
    // past the cap (16 charges) so the escalation fires.
    int ticks = 400;
    EventFunction keepAlive(
        [&] {
            if (--ticks > 0)
                sim.eventQueue().schedule(keepAlive, sim.curTick() +
                                          ticksFromUs(10.0));
        },
        "keep_alive");
    sim.eventQueue().schedule(keepAlive, ticksFromUs(1.0));

    EventFunction start([&] { req.send(); }, "start_traffic");
    sim.eventQueue().schedule(start, 1);
    EXPECT_DEATH(sim.run(),
                 "DEGRADE ESCALATION.*stubborn_cpu.*test_sink");

    // The death child wrote the machine-readable report before
    // panicking — that file is what the run supervisor classifies.
    std::ifstream is(report);
    ASSERT_TRUE(is.is_open()) << report;
    std::ostringstream text;
    text << is.rdbuf();
    EXPECT_NE(text.str().find("\"kind\": \"degrade-escalation\""),
              std::string::npos)
        << text.str();
    EXPECT_NE(text.str().find("stubborn_cpu"), std::string::npos);

    // Unwind the parent's copy of the deadlock for teardown.
    sink.drainWaiters();
    freePacket(req.packet());
}

// Injector seams -------------------------------------------------------

TEST(FaultInjectorTest, OfferBurstRejectsThenHeals)
{
    Simulation sim;
    // Reject every offer in the first 2us; the flush event at the
    // window's end must force-wake the starved requestor.
    sim.configureFaults("offer-burst(len=2us)", 3);

    SlowSink sink(sim);
    MemPacket *pkt = allocPacket(sim);
    RetryingRequestor req(sink, pkt);
    EventFunction start([&] { req.send(); }, "start");
    sim.eventQueue().schedule(start, 1);
    sim.run();

    EXPECT_TRUE(req.delivered());
    EXPECT_GE(sim.faultInjector()->statOfferRejects.value(), 1.0);
    EXPECT_EQ(sim.packetPool().live(), 0u);
}

TEST(FaultInjectorTest, SeededCampaignsReplay)
{
    auto countRejects = [](std::uint64_t seed) {
        Simulation sim;
        sim.configureFaults("offer-burst(prob=0.5,len=10us)", seed);
        SlowSink sink(sim);
        std::vector<std::unique_ptr<RetryingRequestor>> reqs;
        EventFunction start(
            [&] {
                for (unsigned i = 0; i < 8; ++i) {
                    reqs.push_back(std::make_unique<RetryingRequestor>(
                        sink, allocPacket(sim, 0x1000 + 64u * i)));
                    reqs.back()->send();
                }
            },
            "start");
        sim.eventQueue().schedule(start, 1);
        sim.run();
        return sim.faultInjector()->statOfferRejects.value();
    };
    EXPECT_DOUBLE_EQ(countRejects(11), countRejects(11));
}

// Fig. 12 SoC soak -----------------------------------------------------

TEST(FaultSoakTest, SocSurvivesRandomFaultCampaignInDegrade)
{
    soc::SocParams p;
    p.model = scenes::WorkloadId::M2_Cube;
    p.highLoad = true; // Fig. 12 scenario: constrained memory.
    p.frames = 2;
    p.fbWidth = 192;
    p.fbHeight = 144;
    p.cpuPrepRequests = 300;

    SimulationBuilder builder;
    builder.checkDeterminism()
        .faultPlan("offer-burst(prob=0.05,len=20us,period=200us);"
                   "dram-stall(prob=0.5,len=10us,period=300us);"
                   "link-delay(delay=200ns,prob=0.1);"
                   "dup-wake(prob=0.05);"
                   "wake-suppress(prob=0.02,count=50)",
                   12345)
        .watchdog(ticksFromUs(250.0), "degrade");

    // Must complete — no checker abort, no unbounded hang. The degrade
    // watchdog is allowed (expected, even) to intervene.
    soc::SocTop soc(p, builder);
    soc.run(ticksFromMs(500.0));

    EXPECT_GT(soc.sim().faultInjector()->injections(), 0u);
    EXPECT_NE(soc.sim().determinismHash(), 0u);
}

} // namespace
} // namespace emerald
