/**
 * @file
 * The SIMT core timing model (paper Table 2, Fig. 5 element 1).
 *
 * Per cycle, each warp scheduler issues at most one instruction from
 * a ready warp. Instructions execute functionally at issue; the
 * timing model then tracks result latency through a scoreboard (ALU /
 * SFU / shared memory) or through the memory system (coalesced
 * transactions into the per-core L1 caches: L1I instruction, L1D
 * global+pixel, L1T texture, L1Z depth, L1C constant+vertex).
 */

#ifndef EMERALD_GPU_SIMT_CORE_HH
#define EMERALD_GPU_SIMT_CORE_HH

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "gpu/coalescer.hh"
#include "gpu/scoreboard.hh"
#include "gpu/warp.hh"
#include "gpu/warp_sched.hh"
#include "sim/clocked.hh"
#include "sim/sim_object.hh"

namespace emerald::mem
{
class TrafficTraceWriter;
} // namespace emerald::mem

namespace emerald::gpu
{

/** Requestor id used for all GPU-originated memory traffic. */
constexpr int gpuRequestorId = 100;

/** Static configuration of one SIMT core. */
struct SimtCoreParams
{
    unsigned maxWarps = 48;
    unsigned maxThreads = 2048;
    unsigned numRegisters = 65536;
    unsigned schedulers = 2;
    /** Queued tasks awaiting a free warp slot. */
    unsigned taskQueueDepth = 8;

    Cycle aluLatency = 4;
    Cycle sfuLatency = 16;
    Cycle sharedMemLatency = 24;
    unsigned lsuIssuePerCycle = 2;
    unsigned maxPendingMemInstrsPerWarp = 6;
    /** Instructions per I-cache line (synthetic 8 B encoding). */
    unsigned instrsPerFetchLine = 16;

    /**
     * Warp scheduling policy (--warp-sched), resolved through the
     * warp_sched.hh registry; "" selects the default (lrr).
     */
    std::string warpSched;

    cache::CacheParams l1i;
    cache::CacheParams l1d;
    cache::CacheParams l1t;
    cache::CacheParams l1z;
    cache::CacheParams l1c;
};

/**
 * One SIMT core with its private L1 caches. All L1s miss into the
 * downstream sink provided at construction (the cluster's port into
 * the GPU interconnect).
 */
class SimtCore : public SimObject,
                 public Clocked,
                 public MemClient,
                 public MemRequestor
{
  public:
    SimtCore(Simulation &sim, const std::string &name,
             ClockDomain &domain, const SimtCoreParams &params,
             MemSink &downstream);

    /**
     * Offer a warp task.
     * @return false when the core's task queue is full.
     */
    bool tryAddTask(WarpTask &&task);

    /** True when no work is queued, resident, or in flight. */
    bool idle() const;

    unsigned queuedTasks() const
    {
        return static_cast<unsigned>(_taskQueue.size());
    }

    const SimtCoreParams &params() const { return _params; }

    /** The L1 cache that services @p kind. */
    cache::Cache &l1ForKind(AccessKind kind);

    cache::Cache &l1i() { return *_l1i; }
    cache::Cache &l1d() { return *_l1d; }
    cache::Cache &l1t() { return *_l1t; }
    cache::Cache &l1z() { return *_l1z; }
    cache::Cache &l1c() { return *_l1c; }

    void memResponse(MemPacket *pkt) override;
    void retryRequest() override;
    std::string requestorName() const override { return name(); }

    /**
     * Mirror every transaction the LSU successfully hands to an L1
     * into @p writer as client @p client (--capture-trace). Null
     * detaches. The writer must outlive the core or be detached.
     */
    void
    setTrafficCapture(mem::TrafficTraceWriter *writer, unsigned client)
    {
        _traceWriter = writer;
        _traceClient = client;
    }

    void serialize(CheckpointOut &out) const override;
    void unserialize(CheckpointIn &in) override;
    /** A busy core's in-flight state does not round-trip. */
    bool checkpointSafe() const override;

    /** @{ Statistics. */
    Scalar statCyclesActive;
    Scalar statWarpInstrs;
    Scalar statThreadInstrs;
    Scalar statTasksVertex;
    Scalar statTasksFragment;
    Scalar statTasksCompute;
    Scalar statStallNoReadyWarp;
    Scalar statLsuStalls;
    /** @} */

  protected:
    bool tick() override;

  private:
    /** A memory instruction with outstanding read transactions. */
    struct MemInstrState
    {
        bool inUse = false;
        unsigned slot = 0;
        std::vector<unsigned> regSlots;
        unsigned outstanding = 0;
        bool initFetch = false;
    };

    /** One coalesced transaction queued for the LSU. */
    struct LsuTxn
    {
        Addr lineAddr;
        bool write;
        AccessKind kind;
        /** Index into _memInstrs, or -1 for posted traffic. */
        int memInstrId;
    };

    void launchQueuedTasks();
    bool issueFrom(unsigned scheduler);
    void executeWarp(unsigned slot);
    void chargeInstructionFetch(Warp &warp, unsigned slot);
    void finishWarpIfDrained(unsigned slot);
    void drainLsu();
    void processWritebacks();
    void barrierArrive(unsigned slot);

    unsigned allocMemInstr(unsigned slot, std::vector<unsigned> regs,
                           bool init_fetch);

    SimtCoreParams _params;
    MemSink &_downstream;

    std::unique_ptr<cache::Cache> _l1i;
    std::unique_ptr<cache::Cache> _l1d;
    std::unique_ptr<cache::Cache> _l1t;
    std::unique_ptr<cache::Cache> _l1z;
    std::unique_ptr<cache::Cache> _l1c;

    std::vector<Warp> _warps;
    Scoreboard _scoreboard;
    std::deque<WarpTask> _taskQueue;

    /** Registers and threads currently allocated to resident warps. */
    unsigned _regsInUse = 0;
    unsigned _threadsInUse = 0;

    std::vector<MemInstrState> _memInstrs;
    std::vector<unsigned> _memInstrFreeList;

    std::deque<LsuTxn> _lsuQueue;
    /**
     * Packet for the head LSU transaction, rejected by its L1 and
     * held until the cache's retryRequest() wakes us. The core sleeps
     * instead of re-offering every cycle.
     */
    MemPacket *_lsuRetryPkt = nullptr;

    /** Pending scoreboard releases: cycle -> (slot, reg slots). */
    std::multimap<Tick, std::pair<unsigned, std::vector<unsigned>>>
        _writebacks;

    /** Barrier bookkeeping: ctaKey -> arrived count. */
    std::map<int, unsigned> _barrierArrived;

    /** One scheduling policy per scheduler lane (warp_sched.hh). */
    std::vector<std::unique_ptr<WarpScheduler>> _warpScheds;
    /** Ranking scratch buffer, reused each cycle to avoid churn. */
    std::vector<unsigned> _orderBuf;
    /** Monotonic warp-launch counter feeding Warp::launchSeq. */
    std::uint64_t _launchSeq = 0;

    /** Traffic-trace capture sink, or null (setTrafficCapture). */
    mem::TrafficTraceWriter *_traceWriter = nullptr;
    unsigned _traceClient = 0;

    isa::StepEffects _effects; // Reused each issue to avoid churn.
};

} // namespace emerald::gpu

#endif // EMERALD_GPU_SIMT_CORE_HH
