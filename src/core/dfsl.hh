/**
 * @file
 * DFSL: Dynamic Fragment Shading Load-balancing (paper Section 6.3,
 * Algorithm 1).
 *
 * DFSL exploits graphics temporal coherence: consecutive frames are
 * similar, so the best work-tile (WT) granularity measured on recent
 * frames predicts the best granularity for upcoming ones. It
 * alternates an evaluation phase — one frame rendered at each WT size
 * in [MinWT, MaxWT] — with a run phase that uses the best observed
 * WT for RunFrames frames, then re-evaluates.
 */

#ifndef EMERALD_CORE_DFSL_HH
#define EMERALD_CORE_DFSL_HH

#include <cstdint>

#include "sim/types.hh"

namespace emerald::core
{

struct DfslParams
{
    unsigned minWT = 1;
    unsigned maxWT = 10;
    /** Frames rendered with WTBest between evaluations. */
    unsigned runFrames = 100;
};

/**
 * Per-application DFSL state. In a real system this lives in the
 * graphics driver (paper: "DFSL can be implemented as part of the
 * graphics driver"); here the harness queries wtForNextFrame() before
 * each frame and reports the frame's execution time afterwards.
 */
class DfslController
{
  public:
    explicit DfslController(const DfslParams &params);

    /** WT size to use for the upcoming frame. */
    unsigned wtForNextFrame() const;

    /** Report the execution time of the frame just rendered. */
    void frameCompleted(std::uint64_t exec_cycles);

    /** True while in the evaluation phase. */
    bool evaluating() const;

    unsigned bestWT() const { return _wtBest; }
    std::uint64_t framesSeen() const { return _currFrame; }

  private:
    unsigned evalFrames() const { return _params.maxWT - _params.minWT
                                         + 1; }
    unsigned phaseLength() const
    {
        return evalFrames() + _params.runFrames;
    }

    DfslParams _params;
    std::uint64_t _currFrame = 0;
    std::uint64_t _minExecTime = ~std::uint64_t(0);
    unsigned _wtBest;
};

} // namespace emerald::core

#endif // EMERALD_CORE_DFSL_HH
