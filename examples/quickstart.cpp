/**
 * @file
 * Quickstart: render one frame of the teapot workload on the
 * standalone Emerald GPU (paper Table 7 configuration), print the
 * frame statistics, and write the image to teapot.ppm.
 *
 * Usage: quickstart [--width=256] [--height=192] [--wt=1]
 *                   [--frames=1] [--out=teapot.ppm]
 *                   [--trace-file=trace.json] [--profile]
 */

#include <cstdio>
#include <sstream>

#include "sim/config.hh"
#include "scenes/workloads.hh"
#include "soc/configs.hh"

using namespace emerald;

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    unsigned width = static_cast<unsigned>(cfg.getU64("width", 256));
    unsigned height = static_cast<unsigned>(cfg.getU64("height", 192));
    unsigned wt = static_cast<unsigned>(cfg.getU64("wt", 1));
    unsigned frames = static_cast<unsigned>(cfg.getU64("frames", 1));
    std::string out = cfg.getString("out", "teapot.ppm");

    // Standalone GPU: 6 SIMT clusters + 2 MB L2 + 4-channel LPDDR3.
    soc::StandaloneGpu rig(width, height, soc::caseStudy2GpuParams(),
                           soc::caseStudy2MemParams(),
                           SimulationBuilder().observability(cfg));
    rig.pipeline().setWtSize(wt);

    mem::FunctionalMemory &fmem = rig.functionalMemory();
    scenes::SceneRenderer scene(
        rig.pipeline(),
        scenes::makeWorkload(scenes::WorkloadId::W6_Teapot), fmem);

    for (unsigned f = 0; f < frames; ++f) {
        bool done = false;
        core::FrameStats stats;
        scene.renderFrame(f, [&](const core::FrameStats &s) {
            stats = s;
            done = true;
        });
        if (!rig.runUntil([&] { return done; })) {
            std::fprintf(stderr, "frame %u did not finish\n", f);
            return 1;
        }
        std::printf("frame %u: %llu GPU cycles, %llu vertices, "
                    "%llu prims (%llu culled), %llu raster tiles, "
                    "%llu Hi-Z rejects, %llu fragments in %llu warps "
                    "(WT=%u)\n",
                    f, (unsigned long long)stats.cycles,
                    (unsigned long long)stats.vertices,
                    (unsigned long long)stats.primsIn,
                    (unsigned long long)stats.primsCulled,
                    (unsigned long long)stats.rasterTiles,
                    (unsigned long long)stats.hizRejects,
                    (unsigned long long)stats.fragments,
                    (unsigned long long)stats.fragWarps,
                    stats.wtSize);
    }

    std::printf("L1T miss rate %.3f, L2 miss rate %.3f, DRAM row-hit "
                "rate %.3f\n",
                rig.gpu().core(0).l1t().missRate(),
                rig.gpu().l2().missRate(), rig.memory().rowHitRate());

    if (cfg.getBool("stats", false)) {
        std::printf("--- full stats dump ---\n");
        std::ostringstream os;
        rig.sim().dumpStats(os);
        std::fputs(os.str().c_str(), stdout);
    }

    if (EventTracer *tracer = rig.sim().tracer()) {
        tracer->close();
        std::printf("wrote %s (%llu trace records)\n",
                    tracer->path().c_str(),
                    (unsigned long long)tracer->numRecords());
    }

    if (scene.framebuffer().writePpm(out))
        std::printf("wrote %s (hash %016llx)\n", out.c_str(),
                    (unsigned long long)scene.framebuffer()
                        .colorHash());
    return 0;
}
