/**
 * @file
 * Versioned, schema-checked checkpointing (gem5 Serialize in spirit).
 *
 * A checkpoint is a directory: `manifest.json` (format version, config
 * fingerprint, tick, and a section table) plus `data.bin` (the
 * concatenated binary sections). Each stateful object writes one
 * section of typed key/value records through CheckpointOut and reads
 * it back through CheckpointIn. Reads are strict: a missing key or a
 * type mismatch is fatal, never a silently default-initialized member
 * — schema drift between the writer and the reader must fail loudly
 * (see docs/checkpointing.md for the compatibility rules).
 */

#ifndef EMERALD_SIM_SERIALIZE_SERIALIZE_HH
#define EMERALD_SIM_SERIALIZE_SERIALIZE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace emerald
{

/** On-disk record payload types. The tag byte is part of the format. */
enum class RecordType : std::uint8_t
{
    U64 = 0,
    I64 = 1,
    F64 = 2,
    Bool = 3,
    Str = 4,
    Blob = 5,
    U64Vec = 6,
    F64Vec = 7,
};

/**
 * Bump on any incompatible change to the record or manifest format.
 * Version 2 added a per-section CRC-32 to the manifest's section
 * table; the reader still accepts version-1 checkpoints (no CRC
 * entries, so integrity verification is skipped for them).
 */
constexpr std::uint64_t checkpointFormatVersion = 2;

/** Oldest manifest format this binary still reads. */
constexpr std::uint64_t checkpointMinReadVersion = 1;

/** CRC-32 (IEEE, reflected polynomial 0xEDB88320) of @p n bytes. */
std::uint32_t crc32(const void *bytes, std::size_t n);

/**
 * What probeCheckpoint() found. Everything except Ok is a recoverable
 * condition: the caller (rotation-aware restore, the run supervisor)
 * skips the damaged checkpoint and falls back to an older one or a
 * cold start instead of aborting.
 */
enum class CkptIntegrity : std::uint8_t
{
    Ok,
    /** No manifest.json — not a checkpoint directory (or torn). */
    MissingManifest,
    /** manifest.json exists but does not parse or lacks fields. */
    MalformedManifest,
    /** Format version outside [min read, current]. */
    UnsupportedVersion,
    /** manifest.json is fine but data.bin is absent. */
    MissingData,
    /** A section extends past the end of data.bin. */
    TruncatedSection,
    /** A section's bytes do not match its manifest CRC. */
    CrcMismatch,
};

/** Stable lower-case name ("ok", "crc-mismatch", ...) for logs/DBs. */
const char *ckptIntegrityName(CkptIntegrity status);

/** Result of a non-fatal checkpoint integrity probe. */
struct CkptProbe
{
    CkptIntegrity status = CkptIntegrity::MissingManifest;
    /** Human-readable diagnosis (names the section / parse error). */
    std::string detail;
    std::uint64_t fingerprint = 0;
    Tick tick = 0;
    std::uint64_t numProcessed = 0;

    bool ok() const { return status == CkptIntegrity::Ok; }
};

/**
 * Inspect the checkpoint directory @p dir without restoring from it:
 * parse the manifest, bounds-check every section against data.bin and
 * verify each section's CRC (format >= 2). Never fatal — a truncated
 * or corrupt checkpoint comes back as a typed, diagnosable status so
 * recovery code can skip it.
 */
CkptProbe probeCheckpoint(const std::string &dir);

/**
 * One section being written: an append-only stream of typed key/value
 * records. Keys must be unique within a section (fatal otherwise) so a
 * checkpoint can never carry two conflicting values for one field.
 */
class CheckpointOut
{
  public:
    explicit CheckpointOut(std::string section_name)
        : _section(std::move(section_name))
    {}

    const std::string &sectionName() const { return _section; }

    void putU64(const std::string &key, std::uint64_t v);
    void putI64(const std::string &key, std::int64_t v);
    void putF64(const std::string &key, double v);
    void putBool(const std::string &key, bool v);
    void putStr(const std::string &key, const std::string &v);
    void putBlob(const std::string &key, const void *bytes,
                 std::size_t n);
    void putU64Vec(const std::string &key,
                   const std::vector<std::uint64_t> &v);
    void putF64Vec(const std::string &key,
                   const std::vector<double> &v);

    /** Convenience: a Tick is stored as U64. */
    void putTick(const std::string &key, Tick v) { putU64(key, v); }

    /** Raw encoded bytes (CheckpointWriter concatenates these). */
    const std::string &bytes() const { return _buf; }

    /** Records written so far. */
    std::size_t numRecords() const { return _numRecords; }

  private:
    void header(const std::string &key, RecordType type);
    void raw(const void *bytes, std::size_t n);

    std::string _section;
    std::string _buf;
    std::map<std::string, RecordType> _seen;
    std::size_t _numRecords = 0;
};

/**
 * One parsed section. Every accessor is schema-checked: asking for a
 * key that is absent, or with the wrong type, is fatal and names the
 * section and key. Restore paths therefore never limp along with
 * half-initialized state.
 */
class CheckpointIn
{
  public:
    /** Decode @p bytes (fatal on truncation or a bad type tag). */
    CheckpointIn(std::string section_name, const char *bytes,
                 std::size_t n);

    const std::string &sectionName() const { return _section; }

    bool has(const std::string &key) const
    {
        return _records.count(key) != 0;
    }

    std::uint64_t getU64(const std::string &key) const;
    std::int64_t getI64(const std::string &key) const;
    double getF64(const std::string &key) const;
    bool getBool(const std::string &key) const;
    std::string getStr(const std::string &key) const;
    const std::string &getBlob(const std::string &key) const;
    std::vector<std::uint64_t> getU64Vec(const std::string &key) const;
    std::vector<double> getF64Vec(const std::string &key) const;

    Tick getTick(const std::string &key) const { return getU64(key); }

    std::size_t numRecords() const { return _records.size(); }

  private:
    struct Record
    {
        RecordType type;
        std::string payload;
    };

    const Record &fetch(const std::string &key, RecordType want) const;

    std::string _section;
    std::map<std::string, Record> _records;
};

/**
 * Interface of every checkpointable object. SimObject derives from
 * this, so all components inherit no-op defaults; emerald_lint's
 * serializable-coverage rule flags SimObject subclasses that keep the
 * default without being allowlisted as stateless.
 */
class Serializable
{
  public:
    virtual ~Serializable() = default;

    /** Write this object's dynamic state into @p out. */
    virtual void serialize(CheckpointOut &out) const { (void)out; }

    /** Restore this object's dynamic state from @p in. */
    virtual void unserialize(CheckpointIn &in) { (void)in; }

    /**
     * True when the object is at a state it can serialize. Objects
     * with transient mid-operation state that cannot round-trip (an
     * open graphics frame, a busy SIMT core) return false and the
     * checkpoint trigger waits for a quiescent inter-event point.
     */
    virtual bool checkpointSafe() const { return true; }
};

/**
 * Accumulates named sections and writes the checkpoint directory
 * (manifest.json + data.bin) in finalize(). Section names must be
 * unique; the writer owns the section buffers.
 */
class CheckpointWriter
{
  public:
    CheckpointWriter(std::string dir, std::uint64_t config_fingerprint,
                     Tick tick, std::uint64_t num_processed);
    ~CheckpointWriter();

    CheckpointWriter(const CheckpointWriter &) = delete;
    CheckpointWriter &operator=(const CheckpointWriter &) = delete;

    /** Start a new section named @p name (fatal on duplicates). */
    CheckpointOut &section(const std::string &name);

    /** Write manifest.json + data.bin; implicit in the destructor. */
    void finalize();

    const std::string &dir() const { return _dir; }

  private:
    std::string _dir;
    std::uint64_t _fingerprint;
    Tick _tick;
    std::uint64_t _numProcessed;
    std::vector<CheckpointOut> _sections;
    bool _finalized = false;
};

/**
 * Opens a checkpoint directory, validates the manifest (format
 * version must match checkpointFormatVersion) and serves sections.
 * The config-fingerprint policy belongs to the caller (Simulation
 * refuses a mismatch unless --restore-force).
 */
class CheckpointReader
{
  public:
    explicit CheckpointReader(const std::string &dir);

    std::uint64_t configFingerprint() const { return _fingerprint; }
    Tick tick() const { return _tick; }
    std::uint64_t numProcessed() const { return _numProcessed; }

    bool hasSection(const std::string &name) const;

    /** Decode section @p name (fatal when absent). */
    CheckpointIn section(const std::string &name) const;

    const std::string &dir() const { return _dir; }

  private:
    struct SectionRef
    {
        std::size_t offset;
        std::size_t size;
    };

    std::string _dir;
    std::uint64_t _fingerprint = 0;
    Tick _tick = 0;
    std::uint64_t _numProcessed = 0;
    std::map<std::string, SectionRef> _sections;
    std::string _data;
};

} // namespace emerald

#endif // EMERALD_SIM_SERIALIZE_SERIALIZE_HH
