file(REMOVE_RECURSE
  "libemerald_cache.a"
)
