# Empty dependencies file for fig17_wt_sweep.
# This may be replaced when dependencies are built.
