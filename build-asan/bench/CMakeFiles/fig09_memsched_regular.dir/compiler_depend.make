# Empty compiler generated dependencies file for fig09_memsched_regular.
# This may be replaced when dependencies are built.
