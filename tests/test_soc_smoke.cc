#include <gtest/gtest.h>
#include "soc/soc_top.hh"

using namespace emerald;

TEST(SocSmoke, TwoFramesBaseline) {
    soc::SocParams p;
    p.model = scenes::WorkloadId::M2_Cube;
    p.frames = 2;
    p.fbWidth = 192;
    p.fbHeight = 144;
    p.cpuPrepRequests = 300;
    soc::SocTop soc(p);
    soc.run(ticksFromMs(500.0));
    ASSERT_EQ(soc.app().frames().size(), 2u);
    EXPECT_GT(soc.app().frames()[1].gpuTime(), 0u);
    EXPECT_GT(soc.memory().totalBytes(), 100000u);
    EXPECT_GT(soc.memory().bytesFor(TrafficClass::Display), 10000u);
    EXPECT_GT(soc.memory().bytesFor(TrafficClass::Cpu), 10000u);
}

TEST(SocSmoke, DashAndHmcRun) {
    for (auto cfg : {soc::MemConfig::DCB, soc::MemConfig::HMC}) {
        soc::SocParams p;
        p.memConfig = cfg;
        p.model = scenes::WorkloadId::M4_Triangles;
        p.frames = 2;
        p.fbWidth = 192;
        p.fbHeight = 144;
        p.cpuPrepRequests = 300;
        soc::SocTop soc(p);
        soc.run(ticksFromMs(500.0));
        EXPECT_EQ(soc.app().frames().size(), 2u) << soc::memConfigName(cfg);
    }
}
