/**
 * @file
 * The run manifest: a JSON snapshot of the expanded grid written into
 * the sweep output directory before any point launches. Tools (and
 * humans) read it to see what the sweep intends to run; the resume
 * journal itself is the set of committed runs in the results DB, and
 * the spec-change guard lives in sweep_meta — the manifest is purely
 * descriptive and is rewritten on every launch.
 */

#ifndef EMERALD_SWEEP_MANIFEST_HH
#define EMERALD_SWEEP_MANIFEST_HH

#include <string>
#include <vector>

#include "sweep/grid.hh"

namespace emerald
{
namespace sweep
{

/** Everything the manifest records about one launch. */
struct ManifestInfo
{
    std::string scenario;
    std::string specHash;
    std::string gitSha;
    std::string restoreDir;
    std::string replayDir;
    std::vector<SweepPoint> points;
};

/** Write @p info as JSON to @p path; fatal if unwritable. */
void writeManifest(const std::string &path, const ManifestInfo &info);

/**
 * The points of @p all whose fingerprint is not in @p done — what a
 * (re)launched sweep still has to run.
 */
std::vector<SweepPoint> pendingPoints(
    const std::vector<SweepPoint> &all,
    const std::vector<std::string> &done);

} // namespace sweep
} // namespace emerald

#endif // EMERALD_SWEEP_MANIFEST_HH
