#include "sweep/db.hh"

#include "sim/logging.hh"
#include "sim/stats_sink.hh"

#ifdef EMERALD_HAS_SQLITE
#include <sqlite3.h>
#endif

namespace emerald
{
namespace sweep
{

bool
sweepDbAvailable()
{
#ifdef EMERALD_HAS_SQLITE
    return true;
#else
    return false;
#endif
}

#ifdef EMERALD_HAS_SQLITE

SweepDb::SweepDb(const std::string &path)
{
    int rc = sqlite3_open(path.c_str(), &_db);
    fatal_if(rc != SQLITE_OK, "cannot open sweep db '%s': %s",
             path.c_str(),
             _db ? sqlite3_errmsg(_db) : "out of memory");
    sqlite3_busy_timeout(_db, 120000);
    // Best-effort pragmas; children set the same ones.
    sqlite3_exec(_db, "PRAGMA journal_mode=WAL", nullptr, nullptr,
                 nullptr);
    sqlite3_exec(_db, "PRAGMA synchronous=NORMAL", nullptr, nullptr,
                 nullptr);

    char *err = nullptr;
    auto exec = [&](const char *sql) {
        int erc = sqlite3_exec(_db, sql, nullptr, nullptr, &err);
        fatal_if(erc != SQLITE_OK, "sweep db '%s': %s (%s)",
                 path.c_str(), err ? err : "error", sql);
    };
    exec("BEGIN IMMEDIATE");
    for (const std::string &ddl : sweepSchemaStatements())
        exec(ddl.c_str());
    exec("COMMIT");
}

SweepDb::~SweepDb()
{
    if (_db)
        sqlite3_close(_db);
}

std::vector<std::string>
SweepDb::doneFingerprints(const std::string &bench,
                          const std::string &gitSha) const
{
    sqlite3_stmt *stmt = nullptr;
    int rc = sqlite3_prepare_v2(
        _db,
        "SELECT fingerprint FROM runs "
        "WHERE bench = ? AND git_sha = ? AND status = 'done'",
        -1, &stmt, nullptr);
    fatal_if(rc != SQLITE_OK, "sweep db query failed: %s",
             sqlite3_errmsg(_db));
    sqlite3_bind_text(stmt, 1, bench.c_str(), -1, SQLITE_TRANSIENT);
    sqlite3_bind_text(stmt, 2, gitSha.c_str(), -1, SQLITE_TRANSIENT);
    std::vector<std::string> done;
    while (sqlite3_step(stmt) == SQLITE_ROW) {
        const unsigned char *text = sqlite3_column_text(stmt, 0);
        if (text)
            done.emplace_back(reinterpret_cast<const char *>(text));
    }
    sqlite3_finalize(stmt);
    return done;
}

std::string
SweepDb::getMeta(const std::string &key) const
{
    sqlite3_stmt *stmt = nullptr;
    int rc = sqlite3_prepare_v2(
        _db, "SELECT value FROM sweep_meta WHERE key = ?", -1, &stmt,
        nullptr);
    fatal_if(rc != SQLITE_OK, "sweep db query failed: %s",
             sqlite3_errmsg(_db));
    sqlite3_bind_text(stmt, 1, key.c_str(), -1, SQLITE_TRANSIENT);
    std::string value;
    if (sqlite3_step(stmt) == SQLITE_ROW) {
        const unsigned char *text = sqlite3_column_text(stmt, 0);
        if (text)
            value = reinterpret_cast<const char *>(text);
    }
    sqlite3_finalize(stmt);
    return value;
}

void
SweepDb::setMeta(const std::string &key, const std::string &value)
{
    sqlite3_stmt *stmt = nullptr;
    int rc = sqlite3_prepare_v2(
        _db,
        "INSERT INTO sweep_meta(key, value) VALUES(?, ?) "
        "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
        -1, &stmt, nullptr);
    fatal_if(rc != SQLITE_OK, "sweep db write failed: %s",
             sqlite3_errmsg(_db));
    sqlite3_bind_text(stmt, 1, key.c_str(), -1, SQLITE_TRANSIENT);
    sqlite3_bind_text(stmt, 2, value.c_str(), -1, SQLITE_TRANSIENT);
    rc = sqlite3_step(stmt);
    sqlite3_finalize(stmt);
    fatal_if(rc != SQLITE_DONE, "sweep db write failed: %s",
             sqlite3_errmsg(_db));
}

#else // !EMERALD_HAS_SQLITE

SweepDb::SweepDb(const std::string &path)
{
    fatal("sweep db '%s': this build has no SQLite support "
          "(install sqlite3 headers and reconfigure)", path.c_str());
}

SweepDb::~SweepDb() = default;

std::vector<std::string>
SweepDb::doneFingerprints(const std::string &, const std::string &)
    const
{
    return {};
}

std::string
SweepDb::getMeta(const std::string &) const
{
    return "";
}

void
SweepDb::setMeta(const std::string &, const std::string &)
{
}

#endif // EMERALD_HAS_SQLITE

} // namespace sweep
} // namespace emerald
