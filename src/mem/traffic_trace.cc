#include "mem/traffic_trace.hh"

#include "sim/logging.hh"
#include "sim/serialize/serialize.hh"

namespace emerald::mem
{

namespace
{

std::string
clientSectionName(unsigned c)
{
    return strprintf("client%u", c);
}

} // namespace

TrafficTraceWriter::TrafficTraceWriter(std::string dir,
                                       std::string label, Addr fb_base)
    : _dir(std::move(dir)), _label(std::move(label)), _fbBase(fb_base)
{
    fatal_if(_dir.empty(), "traffic trace: empty capture directory");
}

TrafficTraceWriter::~TrafficTraceWriter()
{
    finalize();
}

unsigned
TrafficTraceWriter::addClient(const std::string &name)
{
    panic_if(_finalized, "traffic trace: addClient after finalize");
    _clients.push_back({name, {}, {}, {}});
    return static_cast<unsigned>(_clients.size() - 1);
}

void
TrafficTraceWriter::beginFrame(Tick now)
{
    panic_if(_finalized, "traffic trace: beginFrame after finalize");
    _frameStart.push_back(now);
    _lastTick = now;
}

void
TrafficTraceWriter::endFrame(Tick now, double work)
{
    panic_if(_frameEnd.size() >= _frameStart.size(),
             "traffic trace: endFrame without beginFrame");
    _frameEnd.push_back(now);
    _frameWork.push_back(work);
    _lastTick = now;
}

void
TrafficTraceWriter::record(unsigned client, Tick now, Addr addr,
                           AccessKind kind, bool write)
{
    panic_if(client >= _clients.size(),
             "traffic trace: record for unregistered client %u",
             client);
    if (_frameStart.empty()) {
        ++_dropped; // Traffic before the first frame opened.
        return;
    }
    std::uint32_t frame =
        static_cast<std::uint32_t>(_frameStart.size() - 1);
    Tick start = _frameStart[frame];
    ClientStream &stream = _clients[client];
    stream.offsets.push_back(now >= start ? now - start : 0);
    stream.addrs.push_back(addr);
    stream.meta.push_back((static_cast<std::uint64_t>(frame) << 32) |
                          (static_cast<std::uint64_t>(kind) << 8) |
                          (write ? 1 : 0));
    ++_numRecords;
    if (now > _lastTick)
        _lastTick = now;
}

void
TrafficTraceWriter::finalize()
{
    if (_finalized)
        return;
    _finalized = true;
    fatal_if(_frameEnd.size() != _frameStart.size(),
             "traffic trace: %zu frame(s) never ended — capture "
             "stopped mid-frame?",
             _frameStart.size() - _frameEnd.size());

    // The trace rides the checkpoint container with fingerprint 0:
    // a trace is meant to replay under configurations (scheduler
    // policies) whose fingerprints differ from the capture run's.
    CheckpointWriter writer(_dir, 0, _lastTick, _numRecords);
    CheckpointOut &meta = writer.section("meta");
    meta.putU64("trace_version", trafficTraceFormatVersion);
    meta.putStr("label", _label);
    meta.putU64("fb_base", _fbBase);
    meta.putU64Vec("frame_start", _frameStart);
    meta.putU64Vec("frame_end", _frameEnd);
    meta.putF64Vec("frame_work", _frameWork);
    meta.putU64("num_clients", _clients.size());
    meta.putU64("dropped", _dropped);

    for (unsigned c = 0; c < _clients.size(); ++c) {
        const ClientStream &stream = _clients[c];
        CheckpointOut &sec = writer.section(clientSectionName(c));
        sec.putStr("name", stream.name);
        sec.putU64Vec("offsets", stream.offsets);
        sec.putU64Vec("addrs", stream.addrs);
        sec.putU64Vec("meta", stream.meta);
    }
    writer.finalize();
}

TrafficTraceReader::TrafficTraceReader(const std::string &dir)
    : _dir(dir)
{
    CheckpointReader reader(dir);
    CheckpointIn meta = reader.section("meta");
    std::uint64_t version = meta.getU64("trace_version");
    fatal_if(version != trafficTraceFormatVersion,
             "traffic trace '%s': format version %llu, this build "
             "reads %llu",
             dir.c_str(), (unsigned long long)version,
             (unsigned long long)trafficTraceFormatVersion);
    _label = meta.getStr("label");
    _fbBase = meta.getU64("fb_base");
    _frameStart = meta.getU64Vec("frame_start");
    _frameEnd = meta.getU64Vec("frame_end");
    _frameWork = meta.getF64Vec("frame_work");
    fatal_if(_frameStart.size() != _frameWork.size() ||
                 _frameEnd.size() != _frameWork.size(),
             "traffic trace '%s': inconsistent frame table",
             dir.c_str());

    std::uint64_t num_clients = meta.getU64("num_clients");
    for (unsigned c = 0; c < num_clients; ++c) {
        CheckpointIn sec = reader.section(clientSectionName(c));
        ClientData data;
        data.name = sec.getStr("name");
        auto offsets = sec.getU64Vec("offsets");
        auto addrs = sec.getU64Vec("addrs");
        auto packed = sec.getU64Vec("meta");
        fatal_if(offsets.size() != addrs.size() ||
                     packed.size() != addrs.size(),
                 "traffic trace '%s': client %u record vectors "
                 "disagree",
                 dir.c_str(), c);
        data.txns.reserve(offsets.size());
        for (std::size_t i = 0; i < offsets.size(); ++i) {
            TraceTxn txn;
            txn.frame = static_cast<std::uint32_t>(packed[i] >> 32);
            txn.offset = offsets[i];
            txn.addr = addrs[i];
            txn.kind = static_cast<AccessKind>((packed[i] >> 8) & 0xff);
            txn.write = (packed[i] & 1) != 0;
            fatal_if(txn.frame >= _frameWork.size(),
                     "traffic trace '%s': client %u record %zu names "
                     "frame %u of %zu",
                     dir.c_str(), c, i, txn.frame, _frameWork.size());
            data.txns.push_back(txn);
        }
        _clients.push_back(std::move(data));
    }
}

std::uint64_t
TrafficTraceReader::numRecords() const
{
    std::uint64_t n = 0;
    for (const ClientData &client : _clients)
        n += client.txns.size();
    return n;
}

} // namespace emerald::mem
