#include "gpu/coalescer.hh"

#include <algorithm>

namespace emerald::gpu
{

std::vector<CoalescedAccess>
coalesce(const std::vector<isa::ThreadMemAccess> &accesses,
         unsigned line_size)
{
    std::vector<CoalescedAccess> out;
    const Addr mask = ~static_cast<Addr>(line_size - 1);
    for (const isa::ThreadMemAccess &access : accesses) {
        CoalescedAccess coalesced{access.addr & mask, access.write};
        // Accesses within a warp instruction touch few lines; linear
        // search beats hashing at this scale.
        if (std::find(out.begin(), out.end(), coalesced) == out.end())
            out.push_back(coalesced);
    }
    return out;
}

} // namespace emerald::gpu
