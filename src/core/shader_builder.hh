/**
 * @file
 * State-driven shader construction.
 *
 * Emerald performs raster operations *in the shader* (paper
 * Section 3.3.1, stages L-N): depth test and blending are real ISA
 * instructions appended (late-Z) or prepended (early-Z) to the user's
 * fragment shader according to the render state. Early-Z is used only
 * when the shader cannot discard fragments and depth write is on —
 * matching the paper's eligibility rule.
 */

#ifndef EMERALD_CORE_SHADER_BUILDER_HH
#define EMERALD_CORE_SHADER_BUILDER_HH

#include <memory>
#include <string>
#include <vector>

#include "core/draw_call.hh"
#include "gpu/isa/assembler.hh"

namespace emerald::core
{

/** Assembles and owns shader programs. */
class ShaderBuilder
{
  public:
    /** Assemble a vertex shader (used verbatim). */
    const gpu::isa::Program *buildVertex(const std::string &name,
                                         const std::string &source);

    /**
     * Assemble a fragment shader and weave in the ROP sequence
     * demanded by @p state. The user source leaves its color in
     * o[0..3] and must not contain exit/ztest/blend/stfb itself.
     */
    const gpu::isa::Program *buildFragment(const std::string &name,
                                           const std::string &source,
                                           const RenderState &state,
                                           bool allow_early_z = true);

    /** Assemble a compute kernel (used verbatim). */
    const gpu::isa::Program *buildKernel(const std::string &name,
                                         const std::string &source);

    /** Whether the last buildFragment chose early-Z. */
    bool lastUsedEarlyZ() const { return _lastEarlyZ; }

  private:
    std::vector<std::unique_ptr<gpu::isa::Program>> _programs;
    bool _lastEarlyZ = false;
};

} // namespace emerald::core

#endif // EMERALD_CORE_SHADER_BUILDER_HH
