#include "sim/packet.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/packet_pool.hh"
#include "sim/serialize/registry.hh"
#include "sim/serialize/serialize.hh"
#include "sim/simulation.hh"

namespace emerald
{

RetryList::RetryList(fault::FaultDomain *domain) : _domain(domain)
{
    if (_domain)
        _domain->registerList(this);
}

MemSink::MemSink(Simulation &sim) : _retries(&sim.faultDomain()) {}

RetryList::~RetryList()
{
    if (_domain)
        _domain->unregisterList(this);
}

void
RetryList::add(MemRequestor &req)
{
    bool duplicate = std::find(_waiters.begin(), _waiters.end(), &req) !=
                     _waiters.end();
    if (!duplicate)
        _waiters.push_back(&req);
    EMERALD_CHECK_HOOK(retryRegistered(this, &req, duplicate));
}

bool
RetryList::wakeOne(bool force)
{
    if (_waiters.empty())
        return false;
    MemRequestor *req = _waiters.front();

    auto *inj = injector();
    if (!force && inj && inj->suppressWake(*this, req)) {
        // Lost wakeup: the victim stays parked and (deliberately)
        // loses its FIFO slot — exactly the bug class the watchdog
        // exists to catch. No retryWoken hook fires: from the
        // protocol's point of view this wake never happened.
        _waiters.pop_front();
        _waiters.push_back(req);
        return false;
    }

    _waiters.pop_front();
    EMERALD_CHECK_HOOK(retryWoken(this, req));
    req->retryRequest();

    if (!force && inj && inj->duplicateWake(*this, req)) {
        // Spurious duplicate: legal per the MemRequestor contract
        // ("wakeups can be spurious"), so a correct requestor must
        // tolerate it; no hook, the mirror checker never sees it.
        req->retryRequest();
    }
    return true;
}

void
RetryList::serialize(CheckpointOut &out, const std::string &prefix,
                     const CheckpointRegistry &reg) const
{
    out.putU64(prefix + ".num_waiters", _waiters.size());
    std::size_t i = 0;
    for (const MemRequestor *req : _waiters) {
        out.putStr(strprintf("%s.waiter%zu", prefix.c_str(), i++),
                   reg.requestorName(*req));
    }
}

void
RetryList::unserialize(CheckpointIn &in, const std::string &prefix,
                       const CheckpointRegistry &reg)
{
    panic_if(!_waiters.empty(),
             "RetryList '%s': unserialize onto a non-empty list",
             _owner.c_str());
    std::uint64_t n = in.getU64(prefix + ".num_waiters");
    for (std::uint64_t i = 0; i < n; ++i) {
        MemRequestor &req = reg.requestor(in.getStr(
            strprintf("%s.waiter%llu", prefix.c_str(),
                      (unsigned long long)i)));
        _waiters.push_back(&req);
        // Keep the retry-protocol mirror in sync: a restored parked
        // waiter must look registered or its eventual wake aborts.
        EMERALD_CHECK_HOOK(retryRegistered(this, &req, false));
    }
}

void
freePacket(MemPacket *pkt)
{
    EMERALD_CHECK_HOOK(packetFreeing(pkt));
    if (pkt->pool)
        pkt->pool->free(pkt);
    else
        // Heap fallback; pooled packets go through free().
        delete pkt; // NOLINT(cppcoreguidelines-owning-memory)
}

const char *
accessKindName(AccessKind kind)
{
    switch (kind) {
      case AccessKind::CpuData: return "cpu_data";
      case AccessKind::Inst: return "inst";
      case AccessKind::GlobalData: return "global";
      case AccessKind::Texture: return "texture";
      case AccessKind::Depth: return "depth";
      case AccessKind::Color: return "color";
      case AccessKind::Constant: return "constant";
      case AccessKind::Vertex: return "vertex";
      case AccessKind::Display: return "display";
      case AccessKind::Writeback: return "writeback";
      case AccessKind::NpuData: return "npu_data";
      default: return "unknown";
    }
}

const char *
trafficClassName(TrafficClass tclass)
{
    switch (tclass) {
      case TrafficClass::Cpu: return "cpu";
      case TrafficClass::Gpu: return "gpu";
      case TrafficClass::Display: return "display";
      case TrafficClass::Npu: return "npu";
      default: return "unknown";
    }
}

std::string
MemPacket::toString() const
{
    return strprintf("%s %s %s addr=0x%llx size=%u req=%d",
                     trafficClassName(tclass), accessKindName(kind),
                     write ? "WR" : "RD", (unsigned long long)addr, size,
                     requestorId);
}

} // namespace emerald
