#!/usr/bin/env python3
"""Trace-replay gate: the replayed figure must keep the
execution-driven shape, measurably faster.

Both inputs are --stats-json files written by a bench (BenchResults
format: {"bench": ..., "results": {...}, "sim": {...}}). The exec run
executed shaders end to end (typically while writing a traffic trace
with --capture-trace); the replay run re-drove the memory system from
that trace with --replay-trace (docs/scheduling.md). Replay is a
timing approximation — the recorded traffic does not adapt to the
swept memory configuration — so unlike check_restore.py this gate
compares the figure's normalized results (`*_norm` keys, the
bars-normalized-to-BAS shape) within an absolute tolerance rather
than demanding bit equality. It also requires the replay to be
measurably faster (summed `*.wall_ms`): a replay that is no faster
than execution has lost its reason to exist.

Exit status: 0 when every norm is within tolerance and the speedup
clears the floor, 1 otherwise.

Usage: check_replay.py exec.json replay.json [--tolerance 0.25]
       [--min-speedup 1.2]
"""

import argparse
import json
import sys

NORM_SUFFIX = "_norm"
WALL_SUFFIX = ".wall_ms"


def load_results(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"check_replay: cannot read '{path}': {err}")
    results = doc.get("results")
    if not isinstance(results, dict):
        sys.exit(f"check_replay: '{path}' has no results object — "
                 "was the bench run with --stats-json?")
    return results


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("exec_json",
                        help="stats-json of the execution-driven run")
    parser.add_argument("replay_json",
                        help="stats-json of the replayed run")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="max absolute delta per *_norm result "
                             "(default 0.25; quick-run deltas measure "
                             "under 0.08)")
    parser.add_argument("--min-speedup", type=float, default=1.2,
                        help="required exec/replay wall-time ratio "
                             "(default 1.2; measured >30x)")
    args = parser.parse_args(argv)

    exe = load_results(args.exec_json)
    rep = load_results(args.replay_json)

    exe_norms = {k: v for k, v in exe.items()
                 if k.endswith(NORM_SUFFIX)}
    rep_norms = {k: v for k, v in rep.items()
                 if k.endswith(NORM_SUFFIX)}

    if not exe_norms:
        sys.exit("check_replay: no *_norm results in the exec run — "
                 "is this a figure bench's --stats-json?")

    failures = 0
    worst = 0.0
    for key in sorted(exe_norms):
        if key not in rep_norms:
            print(f"FAIL {key}: missing from the replay run")
            failures += 1
            continue
        delta = abs(exe_norms[key] - rep_norms[key])
        worst = max(worst, delta)
        if delta > args.tolerance:
            print(f"FAIL {key}: exec {exe_norms[key]:.3f} vs replay "
                  f"{rep_norms[key]:.3f} (|delta| {delta:.3f} > "
                  f"{args.tolerance:g}) — the replayed shape drifted")
            failures += 1
        else:
            print(f"OK   {key}: exec {exe_norms[key]:.3f} vs replay "
                  f"{rep_norms[key]:.3f} (|delta| {delta:.3f})")

    for key in sorted(set(rep_norms) - set(exe_norms)):
        print(f"FAIL {key}: present only in the replay run")
        failures += 1

    exe_wall = sum(v for k, v in exe.items()
                   if k.endswith(WALL_SUFFIX))
    rep_wall = sum(v for k, v in rep.items()
                   if k.endswith(WALL_SUFFIX))
    if exe_wall <= 0 or rep_wall <= 0:
        print("FAIL speedup: missing *.wall_ms results in one of the "
              "runs")
        failures += 1
    else:
        speedup = exe_wall / rep_wall
        if speedup < args.min_speedup:
            print(f"FAIL speedup: exec {exe_wall:.0f} ms vs replay "
                  f"{rep_wall:.0f} ms ({speedup:.2f}x < "
                  f"{args.min_speedup:g}x) — replay is not earning "
                  "its keep")
            failures += 1
        else:
            print(f"OK   speedup: exec {exe_wall:.0f} ms vs replay "
                  f"{rep_wall:.0f} ms ({speedup:.2f}x)")

    if failures:
        print(f"check_replay: {failures} check(s) failed",
              file=sys.stderr)
        return 1
    print(f"check_replay: {len(exe_norms)} norm(s) within "
          f"{args.tolerance:g} (worst {worst:.3f}), replay "
          f"{exe_wall / rep_wall:.1f}x faster")
    return 0


if __name__ == "__main__":
    sys.exit(main())
