#!/usr/bin/env python3
"""Sweep gate: the results store must be complete, intact, and match
the execution-driven reference shape.

Inputs are a sweep results DB (written by emerald_sweep's children via
--stats-out=sqlite:...) and the sweep's manifest.json. Checks:

  1. SQLite integrity (PRAGMA integrity_check) and the expected
     schema (sweep_meta/runs/run_params/stats/run_failures,
     schema_version 1).
  2. Every manifest point has a committed 'done' run, and every run
     carries stats rows — a killed-and-resumed sweep that silently
     dropped a point fails here. With --allow-quarantined, a point
     the orchestrator explicitly quarantined (retry budget exhausted,
     see docs/resilience.md) is accounted for rather than missing.
  3. Optionally (--reference): the normalized per-config shape
     computed from SQL (gpu_ms grouped by the config axis, normalized
     to BAS) matches the reference figure's *_norm results within an
     absolute tolerance — the same contract check_replay.py applies
     between execution and replay runs.

Exit status: 0 when every check passes, 1 otherwise.

Usage: check_sweep.py sweep.db --manifest out/manifest.json
       [--reference fig12.json --model M2-cube --where fps=60
        --tolerance 0.25]
"""

import argparse
import json
import sqlite3
import sys

EXPECTED_TABLES = {"sweep_meta", "runs", "run_params", "stats",
                   "run_failures"}


def fail(msg):
    print(f"FAIL {msg}")
    return 1


def check_integrity(con):
    failures = 0
    row = con.execute("PRAGMA integrity_check").fetchone()
    if row is None or row[0] != "ok":
        failures += fail(f"integrity_check: {row and row[0]}")
    else:
        print("OK   integrity_check")
    tables = {name for (name,) in con.execute(
        "SELECT name FROM sqlite_master WHERE type='table'")}
    missing = EXPECTED_TABLES - tables
    if missing:
        failures += fail(f"schema: missing table(s) {sorted(missing)}")
    else:
        print("OK   schema tables")
    row = con.execute(
        "SELECT value FROM sweep_meta WHERE key='schema_version'"
    ).fetchone()
    if row is None or row[0] != "1":
        failures += fail(f"schema_version: {row and row[0]!r} != '1'")
    else:
        print("OK   schema_version 1")
    return failures


def check_complete(con, manifest_path, git_sha=None,
                   allow_quarantined=False):
    failures = 0
    try:
        with open(manifest_path, encoding="utf-8") as f:
            manifest = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"check_sweep: cannot read '{manifest_path}': {err}")
    points = manifest.get("points", [])
    if not points:
        sys.exit(f"check_sweep: '{manifest_path}' lists no points")

    query = "SELECT run_id, fingerprint FROM runs WHERE status='done'"
    params = ()
    if git_sha:
        query += " AND git_sha=?"
        params = (git_sha,)
    done = {fp: run_id
            for run_id, fp in con.execute(query, params)}
    stat_counts = dict(con.execute(
        "SELECT run_id, COUNT(*) FROM stats GROUP BY run_id"))
    qquery = ("SELECT fingerprint FROM runs "
              "WHERE status='quarantined'")
    quarantined = {fp for (fp,) in con.execute(qquery, ())}

    accounted = 0
    for point in points:
        fp = point.get("fingerprint", "")
        if fp in done:
            if not stat_counts.get(done[fp]):
                failures += fail(f"point {fp}: run committed but has "
                                 "no stats rows")
            continue
        if fp in quarantined:
            # An explicitly quarantined point is accounted for — its
            # budget was exhausted and the DB says so (resilience
            # taxonomy). Only --allow-quarantined accepts that; the
            # default gate still wants every point green.
            if allow_quarantined:
                accounted += 1
                print(f"note quarantined point {fp} "
                      f"({json.dumps(point.get('params'))})")
                continue
            failures += fail(f"point {fp}: quarantined "
                             f"({json.dumps(point.get('params'))})")
            continue
        failures += fail(f"point {fp}: no committed run "
                         f"({json.dumps(point.get('params'))})")
    if not failures:
        print(f"OK   completion: {len(points) - accounted}/"
              f"{len(points)} points committed with stats"
              + (f", {accounted} quarantined" if accounted else ""))
    return failures


def db_shape(con, model, where, stat="results.gpu_ms",
             axis="config", git_sha=None):
    """axis value -> stat for the selected runs."""
    where = dict(where, model=model)
    allowed = None
    if git_sha:
        allowed = {run_id for (run_id,) in con.execute(
            "SELECT run_id FROM runs WHERE git_sha=?", (git_sha,))}
    runs = {}
    for run_id, key, value in con.execute(
            "SELECT run_id, key, value FROM run_params"):
        if allowed is not None and run_id not in allowed:
            continue
        runs.setdefault(run_id, {})[key] = value
    shape = {}
    for run_id, params in runs.items():
        if any(params.get(k) != v for k, v in where.items()):
            continue
        key = params.get(axis)
        if key is None:
            continue
        if key in shape:
            sys.exit(f"check_sweep: several runs share {axis}={key}; "
                     "narrow with --where")
        row = con.execute(
            "SELECT value FROM stats WHERE run_id=? AND name=?",
            (run_id, stat)).fetchone()
        if row is None or row[0] is None:
            sys.exit(f"check_sweep: run {run_id} has no '{stat}'")
        shape[key] = row[0]
    if not shape:
        sys.exit(f"check_sweep: no runs match {where}")
    return shape


def check_shape(con, reference_path, model, where, tolerance,
                git_sha=None):
    failures = 0
    try:
        with open(reference_path, encoding="utf-8") as f:
            reference = json.load(f).get("results", {})
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"check_sweep: cannot read '{reference_path}': "
                 f"{err}")

    shape = db_shape(con, model, where, git_sha=git_sha)
    if "BAS" not in shape or shape["BAS"] == 0:
        sys.exit("check_sweep: no BAS run to normalize to")
    base = shape["BAS"]

    compared = 0
    for config in sorted(shape):
        ref_key = f"{model}.{config}.gpu_ms_norm"
        if ref_key not in reference:
            failures += fail(f"shape {config}: reference has no "
                             f"'{ref_key}'")
            continue
        norm = shape[config] / base
        delta = abs(norm - reference[ref_key])
        compared += 1
        if delta > tolerance:
            failures += fail(
                f"shape {config}: sweep {norm:.3f} vs reference "
                f"{reference[ref_key]:.3f} (|delta| {delta:.3f} > "
                f"{tolerance:g})")
        else:
            print(f"OK   shape {config}: sweep {norm:.3f} vs "
                  f"reference {reference[ref_key]:.3f} "
                  f"(|delta| {delta:.3f})")
    if not compared:
        failures += fail("shape: nothing compared")
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("db", help="sweep results store")
    parser.add_argument("--manifest", required=True,
                        help="manifest.json emerald_sweep wrote")
    parser.add_argument("--reference",
                        help="execution-driven fig12 --stats-out JSON "
                             "to compare the SQL shape against")
    parser.add_argument("--model", default="M2-cube",
                        help="workload whose shape to compare "
                             "(default M2-cube)")
    parser.add_argument("--where", action="append", metavar="k=v",
                        default=[],
                        help="extra param filter for the shape "
                             "selection, e.g. fps=60")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="max absolute delta per normalized bar "
                             "(default 0.25, matching "
                             "check_replay.py)")
    parser.add_argument("--allow-quarantined", action="store_true",
                        help="accept points whose runs.status is "
                             "'quarantined' (chaos sweeps that "
                             "deliberately poison a point)")
    parser.add_argument("--git-sha",
                        help="only consider runs recorded under this "
                             "sha — required when the DB accumulates "
                             "several nightlies (the regress ratchet "
                             "cache)")
    args = parser.parse_args(argv)

    where = {}
    for pair in args.where:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            sys.exit(f"check_sweep: bad --where '{pair}'")
        where[key] = value

    try:
        con = sqlite3.connect(f"file:{args.db}?mode=ro", uri=True)
        con.execute("SELECT 1")
    except sqlite3.Error as err:
        sys.exit(f"check_sweep: cannot open '{args.db}': {err}")

    failures = check_integrity(con)
    failures += check_complete(con, args.manifest, args.git_sha,
                               args.allow_quarantined)
    if args.reference:
        failures += check_shape(con, args.reference, args.model,
                                where, args.tolerance, args.git_sha)

    if failures:
        print(f"check_sweep: {failures} check(s) failed",
              file=sys.stderr)
        return 1
    print("check_sweep: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
