#include "scenes/mesh.hh"

namespace emerald::scenes
{

using core::Mat4;
using core::Vec2;
using core::Vec3;
using core::Vec4;

void
Mesh::addTriangle(const Vec3 pos[3], const Vec3 nrm[3],
                  const Vec2 uv[3])
{
    for (int i = 0; i < 3; ++i) {
        _data.push_back(pos[i].x);
        _data.push_back(pos[i].y);
        _data.push_back(pos[i].z);
        _data.push_back(nrm[i].x);
        _data.push_back(nrm[i].y);
        _data.push_back(nrm[i].z);
        _data.push_back(uv[i].x);
        _data.push_back(uv[i].y);
    }
}

void
Mesh::addQuad(const Vec3 &a, const Vec3 &b, const Vec3 &c,
              const Vec3 &d, const Vec3 &normal)
{
    Vec3 p0[3] = {a, b, c};
    Vec2 t0[3] = {{0, 0}, {1, 0}, {1, 1}};
    Vec3 n[3] = {normal, normal, normal};
    addTriangle(p0, n, t0);
    Vec3 p1[3] = {a, c, d};
    Vec2 t1[3] = {{0, 0}, {1, 1}, {0, 1}};
    addTriangle(p1, n, t1);
}

void
Mesh::append(const Mesh &other)
{
    _data.insert(_data.end(), other._data.begin(), other._data.end());
}

void
Mesh::transform(const Mat4 &m)
{
    for (std::size_t i = 0; i + vertexFloats <= _data.size();
         i += vertexFloats) {
        Vec4 p{_data[i], _data[i + 1], _data[i + 2], 1.0f};
        Vec4 tp = m * p;
        _data[i] = tp.x;
        _data[i + 1] = tp.y;
        _data[i + 2] = tp.z;
        // Rotate normals (assumes orthonormal upper 3x3).
        Vec4 n{_data[i + 3], _data[i + 4], _data[i + 5], 0.0f};
        Vec4 tn = m * n;
        Vec3 nn = core::normalize({tn.x, tn.y, tn.z});
        _data[i + 3] = nn.x;
        _data[i + 4] = nn.y;
        _data[i + 5] = nn.z;
    }
}

} // namespace emerald::scenes
