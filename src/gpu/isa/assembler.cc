#include "gpu/isa/assembler.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>
#include <sstream>
#include <vector>

#include "gpu/isa/cfg.hh"
#include "sim/logging.hh"

namespace emerald::gpu::isa
{

namespace
{

[[noreturn]] void
asmError(int line, const std::string &msg)
{
    throw AsmError(strprintf("line %d: %s", line, msg.c_str()));
}

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

/** Split on commas that are outside brackets. */
std::vector<std::string>
splitOperands(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    int depth = 0;
    for (char c : s) {
        if (c == '[')
            ++depth;
        else if (c == ']')
            --depth;
        if (c == ',' && depth == 0) {
            out.push_back(trim(cur));
            cur.clear();
        } else {
            cur += c;
        }
    }
    cur = trim(cur);
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

bool
parseIndexed(const std::string &tok, char prefix, int &index)
{
    // Matches e.g. "c[12]" for prefix 'c'.
    if (tok.size() < 4 || tok[0] != prefix || tok[1] != '[' ||
        tok.back() != ']') {
        return false;
    }
    index = std::atoi(tok.substr(2, tok.size() - 3).c_str());
    return true;
}

bool
isNumber(const std::string &tok)
{
    if (tok.empty())
        return false;
    char c = tok[0];
    return std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
           c == '+' || c == '.';
}

const std::map<std::string, Opcode> opcodeTable = {
    {"nop", Opcode::NOP},     {"mov", Opcode::MOV},
    {"add", Opcode::ADD},     {"sub", Opcode::SUB},
    {"mul", Opcode::MUL},     {"div", Opcode::DIV},
    {"mad", Opcode::MAD},     {"min", Opcode::MIN},
    {"max", Opcode::MAX},     {"abs", Opcode::ABS},
    {"neg", Opcode::NEG},     {"flr", Opcode::FLR},
    {"frc", Opcode::FRC},     {"and", Opcode::AND},
    {"or", Opcode::OR},       {"xor", Opcode::XOR},
    {"not", Opcode::NOT},     {"shl", Opcode::SHL},
    {"shr", Opcode::SHR},     {"cvt", Opcode::CVT},
    {"setp", Opcode::SETP},   {"selp", Opcode::SELP},
    {"rcp", Opcode::RCP},     {"rsq", Opcode::RSQ},
    {"sqrt", Opcode::SQRT},   {"ex2", Opcode::EX2},
    {"lg2", Opcode::LG2},     {"sin", Opcode::SIN},
    {"cos", Opcode::COS},     {"pow", Opcode::POW},
    {"ldg", Opcode::LDG},     {"stg", Opcode::STG},
    {"lds", Opcode::LDS},     {"sts", Opcode::STS},
    {"tex", Opcode::TEX},     {"sto", Opcode::STO},
    {"ztest", Opcode::ZTEST}, {"blend", Opcode::BLEND},
    {"stfb", Opcode::STFB},   {"discard", Opcode::DISCARD},
    {"bra", Opcode::BRA},     {"bar", Opcode::BAR},
    {"exit", Opcode::EXIT},
};

const std::map<std::string, SpecialReg> specialTable = {
    {"x", SpecialReg::FragX},        {"y", SpecialReg::FragY},
    {"z", SpecialReg::FragZ},        {"vid", SpecialReg::VertId},
    {"tid.x", SpecialReg::TidX},     {"tid.y", SpecialReg::TidY},
    {"ctaid.x", SpecialReg::CtaIdX}, {"ctaid.y", SpecialReg::CtaIdY},
    {"ntid.x", SpecialReg::NTidX},   {"ntid.y", SpecialReg::NTidY},
};

const std::map<std::string, CmpOp> cmpTable = {
    {"eq", CmpOp::EQ}, {"ne", CmpOp::NE}, {"lt", CmpOp::LT},
    {"le", CmpOp::LE}, {"gt", CmpOp::GT}, {"ge", CmpOp::GE},
};

const std::map<std::string, DataType> typeTable = {
    {"f32", DataType::F32},
    {"s32", DataType::S32},
    {"u32", DataType::U32},
};

struct ParsedLine
{
    Instruction instr;
    std::string branchLabel;
    int sourceLine = 0;
};

Operand
parseOperand(const std::string &tok, DataType type, int line)
{
    Operand op;
    int idx = 0;

    if (tok.size() >= 2 && tok[0] == 'r' &&
        std::isdigit(static_cast<unsigned char>(tok[1]))) {
        op.kind = Operand::Kind::Reg;
        op.index = std::atoi(tok.c_str() + 1);
        if (op.index < 0 || op.index >= static_cast<int>(maxRegs))
            asmError(line, "register out of range: " + tok);
        return op;
    }
    if (tok.size() >= 2 && tok[0] == 'p' &&
        std::isdigit(static_cast<unsigned char>(tok[1]))) {
        op.kind = Operand::Kind::Pred;
        op.index = std::atoi(tok.c_str() + 1);
        if (op.index < 0 || op.index >= static_cast<int>(maxPreds))
            asmError(line, "predicate out of range: " + tok);
        return op;
    }
    if (parseIndexed(tok, 'c', idx)) {
        op.kind = Operand::Kind::Const;
        op.index = idx;
        return op;
    }
    if (parseIndexed(tok, 'a', idx)) {
        op.kind = Operand::Kind::Attr;
        op.index = idx;
        if (idx < 0 || idx >= static_cast<int>(maxAttrs))
            asmError(line, "attribute out of range: " + tok);
        return op;
    }
    if (parseIndexed(tok, 'o', idx)) {
        op.kind = Operand::Kind::Out;
        op.index = idx;
        if (idx < 0 || idx >= static_cast<int>(maxOutputs))
            asmError(line, "output out of range: " + tok);
        return op;
    }
    if (tok[0] == '%') {
        auto it = specialTable.find(tok.substr(1));
        if (it == specialTable.end())
            asmError(line, "unknown special register: " + tok);
        op.kind = Operand::Kind::Special;
        op.special = it->second;
        return op;
    }
    if (isNumber(tok)) {
        op.kind = Operand::Kind::Imm;
        if (type == DataType::F32)
            op.imm.f = std::strtof(tok.c_str(), nullptr);
        else if (type == DataType::S32)
            op.imm.i = static_cast<std::int32_t>(
                std::strtol(tok.c_str(), nullptr, 0));
        else
            op.imm.u = static_cast<std::uint32_t>(
                std::strtoul(tok.c_str(), nullptr, 0));
        return op;
    }
    asmError(line, "cannot parse operand: " + tok);
}

/** Parse "[rN]" / "[rN + K]" / "[rN - K]". */
void
parseMemOperand(const std::string &tok, Operand &base,
                std::int32_t &offset, int line)
{
    if (tok.size() < 3 || tok.front() != '[' || tok.back() != ']')
        asmError(line, "expected memory operand: " + tok);
    std::string inner = trim(tok.substr(1, tok.size() - 2));
    std::size_t plus = inner.find('+');
    std::size_t minus = inner.find('-');
    std::string reg = inner;
    offset = 0;
    if (plus != std::string::npos) {
        reg = trim(inner.substr(0, plus));
        offset = std::atoi(trim(inner.substr(plus + 1)).c_str());
    } else if (minus != std::string::npos) {
        reg = trim(inner.substr(0, minus));
        offset = -std::atoi(trim(inner.substr(minus + 1)).c_str());
    }
    base = parseOperand(reg, DataType::U32, line);
    if (base.kind != Operand::Kind::Reg)
        asmError(line, "memory base must be a register: " + tok);
}

} // namespace

Program
assemble(const std::string &name, const std::string &source)
{
    std::vector<ParsedLine> lines;
    std::map<std::string, int> labels;

    std::istringstream in(source);
    std::string raw;
    int line_no = 0;

    while (std::getline(in, raw)) {
        ++line_no;
        // Strip comments.
        std::size_t hash = raw.find('#');
        if (hash != std::string::npos)
            raw = raw.substr(0, hash);
        std::size_t slashes = raw.find("//");
        if (slashes != std::string::npos)
            raw = raw.substr(0, slashes);
        std::string text = trim(raw);
        if (text.empty())
            continue;

        // Labels (possibly followed by an instruction).
        while (true) {
            std::size_t colon = text.find(':');
            if (colon == std::string::npos)
                break;
            std::string label = trim(text.substr(0, colon));
            bool ident = !label.empty();
            for (char c : label) {
                if (!std::isalnum(static_cast<unsigned char>(c)) &&
                    c != '_') {
                    ident = false;
                }
            }
            if (!ident)
                break;
            if (labels.count(label))
                asmError(line_no, "duplicate label: " + label);
            labels[label] = static_cast<int>(lines.size());
            text = trim(text.substr(colon + 1));
        }
        if (text.empty())
            continue;

        ParsedLine parsed;
        parsed.sourceLine = line_no;
        Instruction &instr = parsed.instr;

        // Guard predicate.
        if (text[0] == '@') {
            std::size_t sp = text.find_first_of(" \t");
            if (sp == std::string::npos)
                asmError(line_no, "guard without instruction");
            std::string guard = text.substr(1, sp - 1);
            text = trim(text.substr(sp));
            if (!guard.empty() && guard[0] == '!') {
                instr.guardNegate = true;
                guard = guard.substr(1);
            }
            if (guard.size() < 2 || guard[0] != 'p')
                asmError(line_no, "bad guard predicate");
            instr.guard = std::atoi(guard.c_str() + 1);
            if (instr.guard < 0 ||
                instr.guard >= static_cast<int>(maxPreds)) {
                asmError(line_no, "guard predicate out of range");
            }
        }

        // Mnemonic with dot modifiers.
        std::size_t sp = text.find_first_of(" \t");
        std::string mnemonic =
            sp == std::string::npos ? text : text.substr(0, sp);
        std::string rest =
            sp == std::string::npos ? "" : trim(text.substr(sp));

        std::vector<std::string> parts;
        {
            std::string cur;
            for (char c : mnemonic) {
                if (c == '.') {
                    parts.push_back(cur);
                    cur.clear();
                } else {
                    cur += c;
                }
            }
            parts.push_back(cur);
        }

        auto op_it = opcodeTable.find(parts[0]);
        if (op_it == opcodeTable.end())
            asmError(line_no, "unknown opcode: " + parts[0]);
        instr.op = op_it->second;

        // Modifiers: types, comparison ops, "2d".
        std::vector<DataType> types;
        for (std::size_t i = 1; i < parts.size(); ++i) {
            if (auto t = typeTable.find(parts[i]); t != typeTable.end())
                types.push_back(t->second);
            else if (auto c = cmpTable.find(parts[i]);
                     c != cmpTable.end())
                instr.cmp = c->second;
            else if (parts[i] == "2d")
                ; // TEX dimensionality; only 2D is supported.
            else if (parts[i] == "sync")
                ; // bar.sync
            else
                asmError(line_no, "unknown modifier: ." + parts[i]);
        }
        if (!types.empty())
            instr.type = types[0];
        if (types.size() > 1) {
            // cvt.<dst>.<src>
            instr.srcType = types[1];
        } else {
            instr.srcType = instr.type;
        }

        std::vector<std::string> ops = splitOperands(rest);
        auto need = [&](std::size_t n) {
            if (ops.size() != n) {
                asmError(line_no,
                         strprintf("%s expects %zu operands, got %zu",
                                   parts[0].c_str(), n, ops.size()));
            }
        };

        switch (instr.op) {
          case Opcode::NOP:
          case Opcode::BAR:
          case Opcode::EXIT:
          case Opcode::DISCARD:
            need(0);
            break;
          case Opcode::BRA:
            need(1);
            parsed.branchLabel = ops[0];
            break;
          case Opcode::MOV:
          case Opcode::ABS:
          case Opcode::NEG:
          case Opcode::FLR:
          case Opcode::FRC:
          case Opcode::NOT:
          case Opcode::RCP:
          case Opcode::RSQ:
          case Opcode::SQRT:
          case Opcode::EX2:
          case Opcode::LG2:
          case Opcode::SIN:
          case Opcode::COS:
          case Opcode::CVT:
            need(2);
            instr.dst = parseOperand(ops[0], instr.type, line_no);
            instr.src[0] = parseOperand(ops[1], instr.srcType, line_no);
            break;
          case Opcode::ADD:
          case Opcode::SUB:
          case Opcode::MUL:
          case Opcode::DIV:
          case Opcode::MIN:
          case Opcode::MAX:
          case Opcode::AND:
          case Opcode::OR:
          case Opcode::XOR:
          case Opcode::SHL:
          case Opcode::SHR:
          case Opcode::POW:
            need(3);
            instr.dst = parseOperand(ops[0], instr.type, line_no);
            instr.src[0] = parseOperand(ops[1], instr.type, line_no);
            instr.src[1] = parseOperand(ops[2], instr.type, line_no);
            break;
          case Opcode::MAD:
            need(4);
            instr.dst = parseOperand(ops[0], instr.type, line_no);
            instr.src[0] = parseOperand(ops[1], instr.type, line_no);
            instr.src[1] = parseOperand(ops[2], instr.type, line_no);
            instr.src[2] = parseOperand(ops[3], instr.type, line_no);
            break;
          case Opcode::SETP:
            need(3);
            instr.dst = parseOperand(ops[0], instr.type, line_no);
            if (instr.dst.kind != Operand::Kind::Pred)
                asmError(line_no, "setp destination must be pN");
            instr.src[0] = parseOperand(ops[1], instr.type, line_no);
            instr.src[1] = parseOperand(ops[2], instr.type, line_no);
            break;
          case Opcode::SELP:
            need(4);
            instr.dst = parseOperand(ops[0], instr.type, line_no);
            instr.src[0] = parseOperand(ops[1], instr.type, line_no);
            instr.src[1] = parseOperand(ops[2], instr.type, line_no);
            instr.src[2] = parseOperand(ops[3], instr.type, line_no);
            if (instr.src[2].kind != Operand::Kind::Pred)
                asmError(line_no, "selp selector must be pN");
            break;
          case Opcode::LDG:
          case Opcode::LDS:
            need(2);
            instr.dst = parseOperand(ops[0], instr.type, line_no);
            parseMemOperand(ops[1], instr.src[0], instr.memOffset,
                            line_no);
            break;
          case Opcode::STG:
          case Opcode::STS:
            need(2);
            parseMemOperand(ops[0], instr.src[0], instr.memOffset,
                            line_no);
            instr.src[1] = parseOperand(ops[1], instr.type, line_no);
            break;
          case Opcode::TEX: {
            need(4);
            instr.dst = parseOperand(ops[0], DataType::F32, line_no);
            if (instr.dst.kind != Operand::Kind::Reg)
                asmError(line_no, "tex destination must be a register");
            if (ops[1].size() < 2 || ops[1][0] != 't')
                asmError(line_no, "tex unit must be tN");
            instr.texUnit = std::atoi(ops[1].c_str() + 1);
            instr.src[0] = parseOperand(ops[2], DataType::F32, line_no);
            instr.src[1] = parseOperand(ops[3], DataType::F32, line_no);
            break;
          }
          case Opcode::STO:
            need(2);
            instr.dst = parseOperand(ops[0], DataType::F32, line_no);
            if (instr.dst.kind != Operand::Kind::Out)
                asmError(line_no, "sto destination must be o[N]");
            instr.src[0] = parseOperand(ops[1], DataType::F32, line_no);
            break;
          case Opcode::ZTEST:
            need(1);
            instr.src[0] = parseOperand(ops[0], DataType::F32, line_no);
            break;
          case Opcode::BLEND:
          case Opcode::STFB:
            need(1);
            instr.src[0] = parseOperand(ops[0], DataType::F32, line_no);
            if (instr.src[0].kind != Operand::Kind::Reg)
                asmError(line_no, "expected quad base register");
            break;
          default:
            asmError(line_no, "unhandled opcode");
        }

        lines.push_back(parsed);
    }

    if (lines.empty())
        throw AsmError("empty program: " + name);

    Program prog;
    prog.name = name;
    prog.code.reserve(lines.size());

    for (ParsedLine &parsed : lines) {
        if (parsed.instr.op == Opcode::BRA) {
            auto it = labels.find(parsed.branchLabel);
            if (it == labels.end()) {
                asmError(parsed.sourceLine,
                         "undefined label: " + parsed.branchLabel);
            }
            parsed.instr.target = it->second;
        }
        prog.code.push_back(parsed.instr);
    }

    // Register/predicate usage and feature flags.
    auto note_reg = [&prog](const Operand &op, unsigned extra = 0) {
        if (op.kind == Operand::Kind::Reg) {
            prog.numRegs = std::max(
                prog.numRegs,
                static_cast<unsigned>(op.index) + 1 + extra);
        } else if (op.kind == Operand::Kind::Pred) {
            prog.numPreds = std::max(
                prog.numPreds, static_cast<unsigned>(op.index) + 1);
        }
    };
    for (const Instruction &instr : prog.code) {
        note_reg(instr.dst, instr.op == Opcode::TEX ? 3 : 0);
        for (const Operand &src : instr.src)
            note_reg(src, (instr.op == Opcode::BLEND ||
                           instr.op == Opcode::STFB)
                              ? 3
                              : 0);
        if (instr.guard >= 0) {
            prog.numPreds = std::max(
                prog.numPreds, static_cast<unsigned>(instr.guard) + 1);
        }
        if (instr.op == Opcode::DISCARD)
            prog.usesDiscard = true;
        if (instr.op == Opcode::ZTEST)
            prog.usesZTest = true;
    }
    if (prog.numRegs > maxRegs)
        throw AsmError("program uses too many registers: " + name);

    resolveReconvergence(prog);
    return prog;
}

} // namespace emerald::gpu::isa
