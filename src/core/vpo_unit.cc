#include "core/vpo_unit.hh"

#include <algorithm>

#include "core/wt_mapping.hh"
#include "sim/logging.hh"

namespace emerald::core
{

void
Pmrb::reset()
{
    _masks.clear();
    _occupancy = 0;
    _nextExpected = 0;
}

void
Pmrb::insert(PrimitiveMask mask)
{
    panic_if(mask.count == 0, "empty primitive mask");
    _occupancy += mask.count;
    auto [it, inserted] = _masks.emplace(mask.firstSeq, std::move(mask));
    panic_if(!inserted, "duplicate PMRB mask for seq %llu",
             (unsigned long long)it->first);
}

bool
Pmrb::headReady() const
{
    if (_masks.empty())
        return false;
    return _masks.begin()->first == _nextExpected;
}

PrimitiveMask
Pmrb::popHead()
{
    panic_if(!headReady(), "PMRB pop with head not ready");
    PrimitiveMask mask = std::move(_masks.begin()->second);
    _masks.erase(_masks.begin());
    _occupancy -= mask.count;
    _nextExpected += mask.count;
    return mask;
}

PrimitiveMask
Pmrb::popAnyReady()
{
    panic_if(!anyReady(), "PMRB out-of-order pop on empty buffer");
    PrimitiveMask mask = std::move(_masks.begin()->second);
    _masks.erase(_masks.begin());
    _occupancy -= mask.count;
    // Keep in-order consumers sane if modes are mixed across draws.
    _nextExpected =
        std::max(_nextExpected, mask.firstSeq + mask.count);
    return mask;
}

std::vector<std::uint32_t>
computeClusterMasks(const std::vector<PrimRecord> &prims,
                    const WtMapping &mapping,
                    unsigned cores_per_cluster, unsigned num_clusters)
{
    std::vector<std::uint32_t> masks(num_clusters, 0);
    for (std::size_t slot = 0; slot < prims.size(); ++slot) {
        const PrimRecord &prim = prims[slot];
        if (prim.culled())
            continue;
        for (int ty = prim.tcY0; ty <= prim.tcY1; ++ty) {
            for (int tx = prim.tcX0; tx <= prim.tcX1; ++tx) {
                if (tx < 0 || ty < 0 ||
                    tx >= static_cast<int>(mapping.tcCols()) ||
                    ty >= static_cast<int>(mapping.tcRows())) {
                    continue;
                }
                unsigned core =
                    mapping.coreOf(static_cast<unsigned>(tx),
                                   static_cast<unsigned>(ty));
                unsigned cluster = core / cores_per_cluster;
                masks[cluster] |= 1u << slot;
            }
        }
    }
    return masks;
}

} // namespace emerald::core
