/**
 * @file
 * The Vertex Processing and Operations (VPO) unit (paper Fig. 6).
 *
 * When a vertex warp finishes shading, bounding boxes are computed
 * for each primitive it covers and a warp-sized primitive mask is
 * produced per SIMT cluster: bit i set means primitive i overlaps
 * screen space owned by that cluster. Masks are delivered to every
 * cluster's Primitive Mask Reorder Buffer (PMRB), which releases
 * primitives strictly in draw-call order.
 */

#ifndef EMERALD_CORE_VPO_UNIT_HH
#define EMERALD_CORE_VPO_UNIT_HH

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/rasterizer.hh"

namespace emerald::core
{

/** One post-clip primitive, shared by the clusters that raster it. */
struct PrimRecord
{
    /** Draw-order sequence number of the primitive slot. */
    std::uint64_t seq = 0;
    /** Post-clip triangles (near clip may fan out up to 3). */
    std::vector<SetupPrim> tris;
    /** TC-tile bounding box over all triangles (inclusive). */
    int tcX0 = 0, tcY0 = 0, tcX1 = -1, tcY1 = -1;

    bool culled() const { return tris.empty(); }
};

/** A per-cluster primitive mask for one vertex warp. */
struct PrimitiveMask
{
    std::uint64_t firstSeq = 0;
    unsigned count = 0;
    /** Bit i: primitive (firstSeq + i) covers this cluster. */
    std::uint32_t bits = 0;
    /** Primitive payloads, indexed by slot. */
    std::shared_ptr<std::vector<PrimRecord>> prims;
};

/**
 * The PMRB: collects masks out of order, releases primitive slots in
 * sequence order (paper Fig. 6 element 4).
 */
class Pmrb
{
  public:
    explicit Pmrb(unsigned capacity_slots = 64)
        : _capacity(capacity_slots)
    {}

    /** Prepare for a new draw. */
    void reset();

    bool
    canAccept(unsigned slots) const
    {
        return _occupancy + slots <= _capacity;
    }

    /** Insert a mask (keyed by its firstSeq). */
    void insert(PrimitiveMask mask);

    /**
     * True when the next in-order mask is available to consume.
     */
    bool headReady() const;

    /**
     * Pop the next in-order mask.
     * @pre headReady().
     */
    PrimitiveMask popHead();

    /** True when any mask (in order or not) is buffered. */
    bool anyReady() const { return !_masks.empty(); }

    /**
     * Pop the lowest-sequence buffered mask even if earlier masks
     * have not arrived — out-of-order primitive rendering (paper
     * Section 3.3.6: safe when depth testing is enabled and blending
     * is disabled). @pre anyReady().
     */
    PrimitiveMask popAnyReady();

    std::uint64_t nextExpected() const { return _nextExpected; }
    unsigned occupancy() const { return _occupancy; }
    bool empty() const { return _masks.empty(); }

  private:
    unsigned _capacity;
    unsigned _occupancy = 0;
    std::uint64_t _nextExpected = 0;
    std::map<std::uint64_t, PrimitiveMask> _masks;
};

/**
 * Bounding-box based cluster mask computation (paper Fig. 6
 * elements 2-3). Returns one mask word per cluster.
 */
class WtMapping;

std::vector<std::uint32_t>
computeClusterMasks(const std::vector<PrimRecord> &prims,
                    const WtMapping &mapping,
                    unsigned cores_per_cluster, unsigned num_clusters);

} // namespace emerald::core

#endif // EMERALD_CORE_VPO_UNIT_HH
