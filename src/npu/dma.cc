#include "npu/dma.hh"

#include <vector>

#include "mem/traffic_trace.hh"
#include "sim/logging.hh"
#include "sim/serialize/packet_serialize.hh"
#include "sim/serialize/registry.hh"
#include "sim/simulation.hh"

namespace emerald::npu
{

NpuDmaEngine::NpuDmaEngine(Simulation &sim, const std::string &name,
                           const NpuDmaParams &params,
                           MemSink &downstream)
    : SimObject(sim, name),
      statBytesRead(*this, "bytes_read", "bytes DMAed from memory"),
      statBytesWritten(*this, "bytes_written",
                       "bytes DMAed to memory"),
      statRequests(*this, "requests", "packets issued"),
      statTransfers(*this, "transfers", "transfers completed"),
      statAborts(*this, "aborts",
                 "transfers abandoned by degrade recovery"),
      statTransferTicks(*this, "transfer_ticks",
                        "transfer latency (ticks)"),
      _params(params), _downstream(downstream)
{
    fatal_if(_params.maxOutstanding == 0 || _params.burstBytes == 0,
             "%s: degenerate DMA parameters", name.c_str());
    registerProfileCounters();
    registerCheckpointClient(*this);
    registerCheckpointRequestor(*this);
}

void
NpuDmaEngine::startTransfer(Addr base, std::uint64_t bytes,
                            bool write, std::uint64_t token)
{
    panic_if(bytes == 0, "%s: zero-byte transfer", name().c_str());
    Transfer t;
    t.base = base;
    t.bytes = bytes;
    t.write = write;
    t.token = token;
    t.start = curTick();
    t.id = _nextId++;
    _transfers.push_back(t);
    pump();
}

NpuDmaEngine::Transfer *
NpuDmaEngine::findById(std::uint64_t id)
{
    for (Transfer &t : _transfers)
        if (t.id == id)
            return &t;
    return nullptr;
}

void
NpuDmaEngine::pump()
{
    if (_pumping || _retryPkt)
        return;
    _pumping = true;
    while (_outstanding < _params.maxOutstanding) {
        // Issue strictly in submission order: the earliest transfer
        // that still has unissued bytes.
        Transfer *t = nullptr;
        for (Transfer &cand : _transfers) {
            if (cand.issued < cand.bytes) {
                t = &cand;
                break;
            }
        }
        if (!t)
            break;
        unsigned chunk = static_cast<unsigned>(
            std::min<std::uint64_t>(_params.burstBytes,
                                    t->bytes - t->issued));
        MemPacket *pkt = sim().packetPool().alloc(
            t->base + t->issued, chunk, t->write, TrafficClass::Npu,
            AccessKind::NpuData, npuRequestorId, this, t->id);
        pkt->issued = curTick();
        Addr addr = pkt->addr;
        bool write = t->write;
        // Count the slot and the bytes before offering: a zero-latency
        // sink may respond synchronously from inside the offer and
        // retire (pop) the transfer before control returns here, so
        // neither t nor pkt may be touched after an accepted offer.
        ++_outstanding;
        t->issued += chunk;
        if (!_downstream.offer(pkt, *this)) {
            // Hold the packet (slot stays reserved) until the sink's
            // retryRequest() wakes us; no polling. A rejecting sink
            // never responded, so the byte count rolls back.
            t->issued -= chunk;
            _retryPkt = pkt;
            _pumping = false;
            return;
        }
        ++statRequests;
        if (_traceWriter)
            _traceWriter->record(_traceClient, curTick(), addr,
                                 AccessKind::NpuData, write);
    }
    _pumping = false;
}

void
NpuDmaEngine::dropRetryPkt()
{
    if (!_retryPkt)
        return;
    freePacket(_retryPkt);
    _retryPkt = nullptr;
    panic_if(_outstanding == 0, "%s: retry slot underflow",
             name().c_str());
    --_outstanding;
}

void
NpuDmaEngine::retryRequest()
{
    if (_retryPkt) {
        MemPacket *pkt = _retryPkt;
        _retryPkt = nullptr;
        Addr addr = pkt->addr;
        unsigned size = pkt->size;
        bool write = pkt->write;
        // Same pre-accounting as pump(): an accepted offer may
        // complete the packet (and retire its transfer)
        // synchronously, so neither t nor pkt survives it.
        Transfer *t = findById(pkt->token);
        if (t)
            t->issued += size;
        if (!_downstream.offer(pkt, *this)) {
            if (t)
                t->issued -= size;
            _retryPkt = pkt;
            return;
        }
        ++statRequests;
        if (_traceWriter)
            _traceWriter->record(_traceClient, curTick(), addr,
                                 AccessKind::NpuData, write);
    }
    pump();
}

void
NpuDmaEngine::memResponse(MemPacket *pkt)
{
    if (pkt->write)
        statBytesWritten += pkt->size;
    else
        statBytesRead += pkt->size;
    // Responses for transfers flushed by degrade recovery drain here
    // with no matching id; they only release their slot.
    if (Transfer *t = findById(pkt->token))
        t->acked += pkt->size;
    freePacket(pkt);
    panic_if(_outstanding == 0, "%s: response underflow",
             name().c_str());
    --_outstanding;
    completeFinished();
    pump();
}

void
NpuDmaEngine::completeFinished()
{
    // Retire in FIFO order so the owner sees transfer completions in
    // the order it queued them, whatever order DRAM responded in.
    while (!_transfers.empty() &&
           _transfers.front().acked == _transfers.front().bytes) {
        Transfer t = _transfers.front();
        _transfers.pop_front();
        ++statTransfers;
        statTransferTicks.sample(
            static_cast<double>(curTick() - t.start));
        if (_client)
            _client->dmaTransferDone(t.token);
    }
}

void
NpuDmaEngine::onWatchdogDegrade()
{
    // Only shed load when a burst is actually stuck; an idle or
    // healthy engine ignores the recovery sweep.
    if (!_retryPkt && _outstanding == 0)
        return;
    dropRetryPkt();
    std::vector<std::uint64_t> tokens;
    tokens.reserve(_transfers.size());
    for (const Transfer &t : _transfers)
        tokens.push_back(t.token);
    statAborts += static_cast<double>(_transfers.size());
    _transfers.clear();
    // Responses still in flight drain through memResponse() as usual;
    // notify after clearing so an abort handler can queue fresh work.
    for (std::uint64_t token : tokens) {
        if (_client)
            _client->dmaTransferAborted(token);
    }
}

void
NpuDmaEngine::hangDiagnostics(std::ostream &os) const
{
    if (!_retryPkt && _outstanding == 0 && _transfers.empty())
        return;
    os << "transfers=" << _transfers.size()
       << " outstanding=" << _outstanding << "/"
       << _params.maxOutstanding
       << (_retryPkt ? " HOLDING rejected packet" : "");
}

void
NpuDmaEngine::serialize(CheckpointOut &out) const
{
    const CheckpointRegistry &reg = sim().checkpointRegistry();
    out.putU64("num_transfers", _transfers.size());
    for (std::size_t i = 0; i < _transfers.size(); ++i) {
        const Transfer &t = _transfers[i];
        std::string prefix = strprintf("t%zu", i);
        out.putU64(prefix + ".base", t.base);
        out.putU64(prefix + ".bytes", t.bytes);
        out.putBool(prefix + ".write", t.write);
        out.putU64(prefix + ".token", t.token);
        out.putU64(prefix + ".issued", t.issued);
        out.putU64(prefix + ".acked", t.acked);
        out.putTick(prefix + ".start", t.start);
        out.putU64(prefix + ".id", t.id);
    }
    out.putU64("next_id", _nextId);
    out.putU64("outstanding", _outstanding);
    out.putBool("has_retry_pkt", _retryPkt != nullptr);
    if (_retryPkt)
        putPacket(out, "retry_pkt", *_retryPkt, reg);
}

void
NpuDmaEngine::unserialize(CheckpointIn &in)
{
    const CheckpointRegistry &reg = sim().checkpointRegistry();
    panic_if(!_transfers.empty(), "%s: unserialize into a busy engine",
             name().c_str());
    std::uint64_t num = in.getU64("num_transfers");
    for (std::uint64_t i = 0; i < num; ++i) {
        std::string prefix =
            strprintf("t%llu", (unsigned long long)i);
        Transfer t;
        t.base = in.getU64(prefix + ".base");
        t.bytes = in.getU64(prefix + ".bytes");
        t.write = in.getBool(prefix + ".write");
        t.token = in.getU64(prefix + ".token");
        t.issued = in.getU64(prefix + ".issued");
        t.acked = in.getU64(prefix + ".acked");
        t.start = in.getTick(prefix + ".start");
        t.id = in.getU64(prefix + ".id");
        _transfers.push_back(t);
    }
    _nextId = in.getU64("next_id");
    _outstanding = static_cast<unsigned>(in.getU64("outstanding"));
    if (in.getBool("has_retry_pkt"))
        _retryPkt = getPacket(in, "retry_pkt", sim().packetPool(),
                              reg);
}

} // namespace emerald::npu
