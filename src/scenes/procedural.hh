/**
 * @file
 * Procedural mesh generators. The paper's workloads are classic
 * research models (Sibenik, Spot, Suzanne, the Utah teapot, ...);
 * those assets cannot be redistributed here, so each is replaced by
 * a procedural stand-in in the same complexity class: comparable
 * triangle counts, screen-space distribution (the source of
 * fragment-shading load imbalance case study II depends on), and
 * texturing (see DESIGN.md, substitutions).
 */

#ifndef EMERALD_SCENES_PROCEDURAL_HH
#define EMERALD_SCENES_PROCEDURAL_HH

#include "scenes/mesh.hh"

namespace emerald::scenes
{

/** Axis-aligned box centered at origin. */
Mesh makeBox(float sx, float sy, float sz);

/** Lat-long UV sphere. */
Mesh makeSphere(float radius, unsigned segments, unsigned rings);

/** Flat floor plane on y=0, tessellated grid. */
Mesh makePlane(float size, unsigned divisions);

/** Open cylinder along +y. */
Mesh makeCylinder(float radius, float height, unsigned segments);

/** Torus in the xz plane. */
Mesh makeTorus(float major, float minor, unsigned segs_major,
               unsigned segs_minor);

/**
 * Surface of revolution of a vase/teapot-like profile — the Utah
 * teapot stand-in (W6).
 */
Mesh makeTeapotish(unsigned segments, unsigned rings);

/**
 * Displaced sphere "head": the Suzanne stand-in (W4/W5) and, with
 * higher displacement, the Mask model (M3).
 */
Mesh makeBlobHead(float radius, unsigned segments, unsigned rings,
                  float displacement, std::uint64_t seed);

/** Stretched displaced sphere quadruped-ish body: Spot (W2). */
Mesh makeSpotish(unsigned segments, unsigned rings);

/** Cathedral-interior stand-in: floor, columns, vault (W1). */
Mesh makeInterior(unsigned columns_per_side, unsigned column_segments);

/** Composite chair: legs, seat, back (M1). */
Mesh makeChair(unsigned tessellation);

/** Field of independent small triangles (M4). */
Mesh makeTriangleField(unsigned count, std::uint64_t seed);

} // namespace emerald::scenes

#endif // EMERALD_SCENES_PROCEDURAL_HH
