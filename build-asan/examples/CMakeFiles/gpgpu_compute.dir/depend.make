# Empty dependencies file for gpgpu_compute.
# This may be replaced when dependencies are built.
