file(REMOVE_RECURSE
  "CMakeFiles/emerald_scenes.dir/scenes/camera.cc.o"
  "CMakeFiles/emerald_scenes.dir/scenes/camera.cc.o.d"
  "CMakeFiles/emerald_scenes.dir/scenes/mesh.cc.o"
  "CMakeFiles/emerald_scenes.dir/scenes/mesh.cc.o.d"
  "CMakeFiles/emerald_scenes.dir/scenes/procedural.cc.o"
  "CMakeFiles/emerald_scenes.dir/scenes/procedural.cc.o.d"
  "CMakeFiles/emerald_scenes.dir/scenes/shaders.cc.o"
  "CMakeFiles/emerald_scenes.dir/scenes/shaders.cc.o.d"
  "CMakeFiles/emerald_scenes.dir/scenes/workloads.cc.o"
  "CMakeFiles/emerald_scenes.dir/scenes/workloads.cc.o.d"
  "libemerald_scenes.a"
  "libemerald_scenes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emerald_scenes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
