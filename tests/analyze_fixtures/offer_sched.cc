// Fixture for tools/emerald_analyze.py: the two rules migrated from
// emerald_lint.py — offer-checked (dropped offer() result) and
// sched-factory (scheduling policy constructed outside its factory).

class MemPacket;

class MemRequestor
{
};

class MemSink
{
  public:
    bool
    offer(MemPacket *pkt, MemRequestor &req)
    {
        (void)pkt;
        (void)req;
        return false;
    }
};

class FrfcfsScheduler
{
  public:
    int pick() { return 0; }
};

bool
drive(MemSink &sink, MemPacket *pkt, MemRequestor &req)
{
    sink.offer(pkt, req); // EXPECT: offer-checked
    bool ok = sink.offer(pkt, req); // result used: clean
    auto *sched = new FrfcfsScheduler(); // EXPECT: sched-factory
    delete sched;
    return ok;
}
