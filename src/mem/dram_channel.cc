#include "mem/dram_channel.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/serialize/packet_serialize.hh"
#include "sim/serialize/registry.hh"
#include "sim/simulation.hh"

namespace emerald::mem
{

void
DramScheduler::serviced(const MemPacket &, Tick)
{
}

DramChannel::DramChannel(Simulation &sim, const std::string &name,
                         const DramGeometry &geom,
                         const DramTiming &timing,
                         DramScheduler &scheduler,
                         unsigned queue_capacity, Tick stats_bucket)
    : SimObject(sim, name),
      statRowHits(*this, "row_hits", "row buffer hits"),
      statRowClosedMisses(*this, "row_closed_misses",
                          "accesses to precharged banks"),
      statRowConflicts(*this, "row_conflicts",
                       "row buffer conflicts (precharge + activate)"),
      statBytesRead(*this, "bytes_read", "bytes read"),
      statBytesWritten(*this, "bytes_written", "bytes written"),
      statRequests(*this, "requests", "requests serviced"),
      statBytesPerActivation(*this, "bytes_per_act",
                             "bytes transferred per row activation"),
      statReadLatencyCpu(*this, "read_lat_cpu",
                         "CPU read latency (ticks)"),
      statReadLatencyGpu(*this, "read_lat_gpu",
                         "GPU read latency (ticks)"),
      statReadLatencyDisplay(*this, "read_lat_display",
                             "display read latency (ticks)"),
      statReadLatencyNpu(*this, "read_lat_npu",
                         "NPU read latency (ticks)"),
      statBwCpu(*this, "bw_cpu", "CPU bytes per bucket", stats_bucket),
      statBwGpu(*this, "bw_gpu", "GPU bytes per bucket", stats_bucket),
      statBwDisplay(*this, "bw_display", "display bytes per bucket",
                    stats_bucket),
      statBwNpu(*this, "bw_npu", "NPU bytes per bucket", stats_bucket),
      _geom(geom), _timing(timing), _scheduler(scheduler),
      _queueCapacity(queue_capacity),
      _banks(geom.banksPerChannel()),
      _retries(&sim.faultDomain()),
      _issueEvent([this] { tryIssue(); }, name + ".issue"),
      _completeEvent([this] { completeHead(); }, name + ".complete")
{
    _retries.setOwner(name);
    registerCheckpointEvent(_issueEvent);
    registerCheckpointEvent(_completeEvent);
}

bool
DramChannel::enqueue(MemPacket *pkt, const DecodedAddr &coord,
                     MemRequestor *req)
{
    EMERALD_CHECK_HOOK(offerStarted(&_retries, pkt));
    // This path bypasses MemSink::offer(), so it carries its own
    // offer-burst fault seam (only meaningful with a requestor to
    // park — probes passing req == nullptr just see the real queue).
    auto *inj = _retries.injector();
    bool force_reject =
        !full() && inj && req && inj->injectOfferReject(_retries, *req);
    if (full() || force_reject) {
        if (req) {
            EMERALD_CHECK_HOOK(offerRejected(&_retries, pkt, req));
            _retries.add(*req);
        }
        return false;
    }
    _queue.push_back({pkt, coord, curTick()});
    scheduleIssue(curTick());
    EMERALD_CHECK_HOOK(offerAccepted(&_retries, pkt));
    return true;
}

bool
DramChannel::bankOpen(unsigned flat_bank) const
{
    return _banks[flat_bank].open;
}

std::uint64_t
DramChannel::bankOpenRow(unsigned flat_bank) const
{
    return _banks[flat_bank].openRow;
}

double
DramChannel::rowHitRate() const
{
    double total = statRowHits.value() + statRowClosedMisses.value() +
                   statRowConflicts.value();
    return total > 0.0 ? statRowHits.value() / total : 0.0;
}

void
DramChannel::scheduleIssue(Tick when)
{
    if (_issueEvent.scheduled()) {
        if (_issueEvent.when() > when)
            reschedule(_issueEvent, std::max(when, curTick()));
        return;
    }
    schedule(_issueEvent, std::max(when, curTick()));
}

void
DramChannel::scheduleCompletion()
{
    if (_inflight.empty())
        return;
    Tick first = _inflight.begin()->first;
    if (_completeEvent.scheduled()) {
        if (_completeEvent.when() > first)
            reschedule(_completeEvent, first);
        return;
    }
    schedule(_completeEvent, first);
}

Tick
DramChannel::service(const DramScheduler::QueueEntry &entry, Tick now,
                     RowBufferOutcome &outcome)
{
    BankState &bank = _banks[entry.coord.flatBank(_geom)];
    Tick cmd_ready = std::max(now, bank.readyTick);

    if (bank.open && bank.openRow == entry.coord.row) {
        outcome = RowBufferOutcome::Hit;
    } else {
        if (bank.open) {
            outcome = RowBufferOutcome::Conflict;
            // Respect tRAS before precharging, then precharge.
            Tick pre_start =
                std::max(cmd_ready, bank.activateTick + _timing.tRAS);
            cmd_ready = pre_start + _timing.tRP;
            statBytesPerActivation.sample(
                static_cast<double>(bank.bytesSinceActivate));
        } else {
            outcome = RowBufferOutcome::ClosedMiss;
        }
        // Activate the target row.
        bank.activateTick = cmd_ready;
        cmd_ready += _timing.tRCD;
        bank.open = true;
        bank.openRow = entry.coord.row;
        bank.bytesSinceActivate = 0;
    }

    // Column command: data appears after CAS latency, transfers on
    // the shared bus for tBURST.
    Tick data_start = std::max(cmd_ready + _timing.tCL, _busFreeTick);
    Tick done = data_start + _timing.tBURST;
    _busFreeTick = done;
    bank.readyTick = data_start;
    if (entry.pkt->write)
        bank.readyTick += _timing.tWR;
    bank.bytesSinceActivate += entry.pkt->size;
    return done;
}

void
DramChannel::tryIssue()
{
    if (_queue.empty())
        return;

    Tick now = curTick();
    if (_busFreeTick > now) {
        scheduleIssue(_busFreeTick);
        return;
    }

    // Fault seam: a dram-stall window freezes the issue path (refresh
    // storm / thermal throttle); re-arm at the window's end.
    if (auto *inj = sim().faultInjector()) {
        Tick until = inj->issueStallEnd(name(), now);
        if (until > now) {
            scheduleIssue(until);
            return;
        }
    }

    std::size_t idx = _scheduler.pick(*this, _queue, now);
    panic_if(idx >= _queue.size(), "scheduler picked out of range");
    DramScheduler::QueueEntry entry = _queue[idx];
    _queue.erase(_queue.begin() + static_cast<std::ptrdiff_t>(idx));

    RowBufferOutcome outcome = RowBufferOutcome::Hit;
    Tick done = service(entry, now, outcome);

    switch (outcome) {
      case RowBufferOutcome::Hit: ++statRowHits; break;
      case RowBufferOutcome::ClosedMiss: ++statRowClosedMisses; break;
      case RowBufferOutcome::Conflict: ++statRowConflicts; break;
    }

    MemPacket *pkt = entry.pkt;
    ++statRequests;
    if (pkt->write)
        statBytesWritten += pkt->size;
    else
        statBytesRead += pkt->size;

    switch (pkt->tclass) {
      case TrafficClass::Cpu:
        statBwCpu.add(done, pkt->size);
        if (!pkt->write)
            statReadLatencyCpu.sample(
                static_cast<double>(done - pkt->issued));
        break;
      case TrafficClass::Gpu:
        statBwGpu.add(done, pkt->size);
        if (!pkt->write)
            statReadLatencyGpu.sample(
                static_cast<double>(done - pkt->issued));
        break;
      case TrafficClass::Display:
        statBwDisplay.add(done, pkt->size);
        if (!pkt->write)
            statReadLatencyDisplay.sample(
                static_cast<double>(done - pkt->issued));
        break;
      case TrafficClass::Npu:
        statBwNpu.add(done, pkt->size);
        if (!pkt->write)
            statReadLatencyNpu.sample(
                static_cast<double>(done - pkt->issued));
        break;
    }

    _scheduler.serviced(*pkt, now);
    _inflight.emplace(done, pkt);
    scheduleCompletion();

    // The dequeued slot is capacity a rejected requestor was waiting
    // for; wake in FIFO order until the queue refills. Stop if a
    // woken requestor made no progress (re-registered itself), so the
    // loop terminates even under pathological retry behaviour.
    while (!full()) {
        std::size_t before = _retries.size();
        if (!_retries.wakeOne())
            break;
        if (_retries.size() >= before)
            break;
    }

    if (!_queue.empty())
        scheduleIssue(_busFreeTick);
}

void
DramChannel::hangDiagnostics(std::ostream &os) const
{
    if (_queue.empty() && _inflight.empty() && _retries.empty())
        return;
    os << "queue=" << _queue.size() << "/" << _queueCapacity
       << " inflight=" << _inflight.size()
       << " waiters=" << _retries.size()
       << " bus_free=" << _busFreeTick;
}

void
DramChannel::serialize(CheckpointOut &out) const
{
    const CheckpointRegistry &reg = sim().checkpointRegistry();

    out.putU64("num_queue", _queue.size());
    for (std::size_t i = 0; i < _queue.size(); ++i) {
        const DramScheduler::QueueEntry &entry = _queue[i];
        std::string prefix = strprintf("q%zu", i);
        putPacket(out, prefix, *entry.pkt, reg);
        out.putU64(prefix + ".coord.channel", entry.coord.channel);
        out.putU64(prefix + ".coord.rank", entry.coord.rank);
        out.putU64(prefix + ".coord.bank", entry.coord.bank);
        out.putU64(prefix + ".coord.row", entry.coord.row);
        out.putU64(prefix + ".coord.column", entry.coord.column);
        out.putTick(prefix + ".enqueued", entry.enqueued);
    }

    std::vector<std::uint64_t> open, open_row, ready, activate, bytes;
    open.reserve(_banks.size());
    for (const BankState &bank : _banks) {
        open.push_back(bank.open);
        open_row.push_back(bank.openRow);
        ready.push_back(bank.readyTick);
        activate.push_back(bank.activateTick);
        bytes.push_back(bank.bytesSinceActivate);
    }
    out.putU64Vec("bank.open", open);
    out.putU64Vec("bank.open_row", open_row);
    out.putU64Vec("bank.ready_tick", ready);
    out.putU64Vec("bank.activate_tick", activate);
    out.putU64Vec("bank.bytes_since_activate", bytes);
    out.putTick("bus_free_tick", _busFreeTick);

    out.putU64("num_inflight", _inflight.size());
    std::size_t i = 0;
    for (const auto &entry : _inflight) {
        std::string prefix = strprintf("in%zu", i++);
        out.putTick(prefix + ".when", entry.first);
        putPacket(out, prefix, *entry.second, reg);
    }

    _retries.serialize(out, "retry", reg);
}

void
DramChannel::unserialize(CheckpointIn &in)
{
    panic_if(!_queue.empty() || !_inflight.empty(),
             "%s: unserialize into a busy channel", name().c_str());
    const CheckpointRegistry &reg = sim().checkpointRegistry();
    PacketPool &pool = sim().packetPool();

    std::uint64_t num_queue = in.getU64("num_queue");
    for (std::uint64_t i = 0; i < num_queue; ++i) {
        std::string prefix = strprintf("q%llu", (unsigned long long)i);
        DramScheduler::QueueEntry entry;
        entry.pkt = getPacket(in, prefix, pool, reg);
        entry.coord.channel = static_cast<unsigned>(
            in.getU64(prefix + ".coord.channel"));
        entry.coord.rank = static_cast<unsigned>(
            in.getU64(prefix + ".coord.rank"));
        entry.coord.bank = static_cast<unsigned>(
            in.getU64(prefix + ".coord.bank"));
        entry.coord.row = in.getU64(prefix + ".coord.row");
        entry.coord.column = in.getU64(prefix + ".coord.column");
        entry.enqueued = in.getTick(prefix + ".enqueued");
        _queue.push_back(entry);
    }

    auto open = in.getU64Vec("bank.open");
    auto open_row = in.getU64Vec("bank.open_row");
    auto ready = in.getU64Vec("bank.ready_tick");
    auto activate = in.getU64Vec("bank.activate_tick");
    auto bytes = in.getU64Vec("bank.bytes_since_activate");
    fatal_if(open.size() != _banks.size(),
             "%s: checkpoint holds %zu banks but this configuration "
             "has %zu", name().c_str(), open.size(), _banks.size());
    for (std::size_t b = 0; b < _banks.size(); ++b) {
        _banks[b].open = open[b] != 0;
        _banks[b].openRow = open_row[b];
        _banks[b].readyTick = ready[b];
        _banks[b].activateTick = activate[b];
        _banks[b].bytesSinceActivate = bytes[b];
    }
    _busFreeTick = in.getTick("bus_free_tick");

    std::uint64_t num_inflight = in.getU64("num_inflight");
    for (std::uint64_t i = 0; i < num_inflight; ++i) {
        std::string prefix = strprintf("in%llu", (unsigned long long)i);
        Tick when = in.getTick(prefix + ".when");
        _inflight.emplace(when, getPacket(in, prefix, pool, reg));
    }

    _retries.unserialize(in, "retry", reg);
}

void
DramChannel::completeHead()
{
    Tick now = curTick();
    while (!_inflight.empty() && _inflight.begin()->first <= now) {
        MemPacket *pkt = _inflight.begin()->second;
        _inflight.erase(_inflight.begin());
        completePacket(pkt);
    }
    scheduleCompletion();
}

} // namespace emerald::mem
