/**
 * @file
 * Tests for the machine-readable observability layer (JSON stat
 * dumps, the Chrome-trace EventTracer, the sim.profile.* profiler)
 * and regression tests for the kernel bugfixes that shipped with it
 * (Random modulo bias, TimeSeries hazards, EventQueue stale-entry
 * compaction, Config space-form parsing).
 */

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/event_tracer.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"

using namespace emerald;

namespace
{

// ------------------------------------------------------------------
// A deliberately small JSON parser: just enough to validate that the
// dumps are well-formed and round-trip the stat values. Throws
// std::runtime_error on malformed input so tests fail loudly.
// ------------------------------------------------------------------

struct JsonValue
{
    enum Kind { Null, Bool, Number, String, Array, Object } kind = Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    const JsonValue &
    at(const std::string &key) const
    {
        auto it = object.find(key);
        if (it == object.end())
            throw std::runtime_error("missing key: " + key);
        return it->second;
    }

    bool has(const std::string &key) const
    {
        return object.count(key) != 0;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : _s(text) {}

    JsonValue
    parse()
    {
        JsonValue v = parseValue();
        skipWs();
        if (_pos != _s.size())
            throw std::runtime_error("trailing garbage");
        return v;
    }

  private:
    void
    skipWs()
    {
        while (_pos < _s.size() &&
               (_s[_pos] == ' ' || _s[_pos] == '\t' ||
                _s[_pos] == '\n' || _s[_pos] == '\r'))
            ++_pos;
    }

    char
    peek()
    {
        skipWs();
        if (_pos >= _s.size())
            throw std::runtime_error("unexpected end");
        return _s[_pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            throw std::runtime_error(std::string("expected ") + c);
        ++_pos;
    }

    JsonValue
    parseValue()
    {
        char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"') {
            JsonValue v;
            v.kind = JsonValue::String;
            v.str = parseString();
            return v;
        }
        if (c == 't' || c == 'f')
            return parseBool();
        if (c == 'n') {
            literal("null");
            return JsonValue{};
        }
        return parseNumber();
    }

    void
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p) {
            if (_pos >= _s.size() || _s[_pos] != *p)
                throw std::runtime_error("bad literal");
            ++_pos;
        }
    }

    JsonValue
    parseBool()
    {
        JsonValue v;
        v.kind = JsonValue::Bool;
        if (_s[_pos] == 't') {
            literal("true");
            v.boolean = true;
        } else {
            literal("false");
        }
        return v;
    }

    JsonValue
    parseNumber()
    {
        std::size_t start = _pos;
        while (_pos < _s.size() &&
               (std::isdigit(static_cast<unsigned char>(_s[_pos])) ||
                _s[_pos] == '-' || _s[_pos] == '+' ||
                _s[_pos] == '.' || _s[_pos] == 'e' ||
                _s[_pos] == 'E'))
            ++_pos;
        if (start == _pos)
            throw std::runtime_error("bad number");
        JsonValue v;
        v.kind = JsonValue::Number;
        v.number = std::stod(_s.substr(start, _pos - start));
        return v;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (_pos >= _s.size())
                throw std::runtime_error("unterminated string");
            char c = _s[_pos++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (_pos >= _s.size())
                    throw std::runtime_error("bad escape");
                char e = _s[_pos++];
                switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    if (_pos + 4 > _s.size())
                        throw std::runtime_error("bad \\u");
                    unsigned code = static_cast<unsigned>(std::stoul(
                        _s.substr(_pos, 4), nullptr, 16));
                    _pos += 4;
                    // Tests only emit ASCII control codes.
                    out += static_cast<char>(code);
                    break;
                }
                default:
                    throw std::runtime_error("bad escape char");
                }
            } else {
                out += c;
            }
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Array;
        if (peek() == ']') {
            ++_pos;
            return v;
        }
        while (true) {
            v.array.push_back(parseValue());
            char c = peek();
            if (c == ']') {
                ++_pos;
                return v;
            }
            expect(',');
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Object;
        if (peek() == '}') {
            ++_pos;
            return v;
        }
        while (true) {
            std::string key = parseString();
            expect(':');
            v.object[key] = parseValue();
            char c = peek();
            if (c == '}') {
                ++_pos;
                return v;
            }
            expect(',');
        }
    }

    const std::string &_s;
    std::size_t _pos = 0;
};

JsonValue
parseJson(const std::string &text)
{
    return JsonParser(text).parse();
}

std::string
readFile(const std::string &path)
{
    std::ifstream is(path);
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

/** A named event counting its own firings. */
class NamedEvent : public Event
{
  public:
    explicit NamedEvent(std::string name) : _name(std::move(name)) {}

    void process() override { ++fired; }
    std::string name() const override { return _name; }

    int fired = 0;

  private:
    std::string _name;
};

} // namespace

// ------------------------------------------------------------------
// JSON stat dumps
// ------------------------------------------------------------------

TEST(JsonStats, RoundTripsScalarDistributionAndTimeSeries)
{
    StatGroup root("");
    StatGroup mem(root, "mem");
    Scalar reads(mem, "reads", "read requests");
    Distribution lat(mem, "latency", "request latency");
    TimeSeries bw(mem, "bw", "bytes per bucket", 100);

    reads += 41;
    ++reads;
    lat.sample(10.0);
    lat.sample(30.0, 2);
    bw.add(0, 64.0);
    bw.add(250, 128.0);

    std::ostringstream os;
    root.dumpJson(os);
    JsonValue doc = parseJson(os.str());

    const JsonValue &memNode = doc.at("groups").at("mem");
    const JsonValue &stats = memNode.at("stats");

    const JsonValue &r = stats.at("reads");
    EXPECT_EQ(r.at("type").str, "scalar");
    EXPECT_DOUBLE_EQ(r.at("value").number, reads.value());
    EXPECT_EQ(r.at("desc").str, "read requests");

    const JsonValue &l = stats.at("latency");
    EXPECT_EQ(l.at("type").str, "distribution");
    EXPECT_DOUBLE_EQ(l.at("count").number, 3.0);
    EXPECT_DOUBLE_EQ(l.at("total").number, lat.total());
    EXPECT_DOUBLE_EQ(l.at("mean").number, lat.mean());
    EXPECT_DOUBLE_EQ(l.at("min").number, 10.0);
    EXPECT_DOUBLE_EQ(l.at("max").number, 30.0);

    const JsonValue &b = stats.at("bw");
    EXPECT_EQ(b.at("type").str, "timeseries");
    EXPECT_DOUBLE_EQ(b.at("bucket_width").number, 100.0);
    ASSERT_EQ(b.at("buckets").array.size(), 3u);
    EXPECT_DOUBLE_EQ(b.at("buckets").array[0].number, 64.0);
    EXPECT_DOUBLE_EQ(b.at("buckets").array[1].number, 0.0);
    EXPECT_DOUBLE_EQ(b.at("buckets").array[2].number, 128.0);
}

TEST(JsonStats, EscapesSpecialCharactersInDescriptions)
{
    StatGroup root("");
    Scalar s(root, "odd",
             "a \"quoted\" desc with \\ backslash and \n newline");
    s = 7;

    std::ostringstream os;
    root.dumpJson(os);
    JsonValue doc = parseJson(os.str());
    EXPECT_EQ(doc.at("stats").at("odd").at("desc").str,
              "a \"quoted\" desc with \\ backslash and \n newline");
}

TEST(JsonStats, SimulationDumpIncludesProfileGroup)
{
    Simulation sim;
    sim.profiler().registerComponent("gpu");

    std::ostringstream os;
    sim.dumpStatsJson(os);
    JsonValue doc = parseJson(os.str());
    const JsonValue &profile =
        doc.at("groups").at("sim").at("groups").at("profile");
    EXPECT_TRUE(profile.at("groups").object.count("gpu"));
    EXPECT_TRUE(profile.at("groups").object.count("other"));
}

// ------------------------------------------------------------------
// Event tracing
// ------------------------------------------------------------------

TEST(EventTracer, WritesWellFormedChromeTrace)
{
    std::string path = ::testing::TempDir() + "emerald_trace.json";

    Simulation sim;
    sim.enableTracing(path);

    NamedEvent a("gpu.sc0.fetch");
    NamedEvent b("display.vsync");
    NamedEvent c("gpu.sc0.fetch2");
    sim.eventQueue().schedule(a, 1000);
    sim.eventQueue().schedule(b, 2000);
    sim.eventQueue().schedule(c, 2000);
    sim.run();
    sim.tracer()->close();

    JsonValue doc = parseJson(readFile(path));
    ASSERT_EQ(doc.kind, JsonValue::Array);

    unsigned complete = 0, metadata = 0;
    std::map<std::string, double> tidByName;
    for (const JsonValue &rec : doc.array) {
        const std::string &ph = rec.at("ph").str;
        if (ph == "X") {
            ++complete;
            EXPECT_TRUE(rec.has("name"));
            EXPECT_TRUE(rec.has("cat"));
            EXPECT_TRUE(rec.has("ts"));
            EXPECT_TRUE(rec.has("dur"));
            EXPECT_TRUE(rec.has("pid"));
            EXPECT_TRUE(rec.has("tid"));
            tidByName[rec.at("name").str] = rec.at("tid").number;
            if (rec.at("name").str == "display.vsync") {
                // ts is simulated microseconds: 2000 ticks = 2e-3 us.
                EXPECT_DOUBLE_EQ(rec.at("ts").number, 2000.0 / 1e6);
                EXPECT_EQ(rec.at("cat").str, "display");
            }
        } else if (ph == "M") {
            ++metadata;
            EXPECT_EQ(rec.at("name").str, "thread_name");
        }
    }
    EXPECT_EQ(complete, 3u);
    // Two categories: "gpu.sc0" and "display".
    EXPECT_EQ(metadata, 2u);
    // Same category -> same timeline row; different -> different.
    EXPECT_EQ(tidByName["gpu.sc0.fetch"], tidByName["gpu.sc0.fetch2"]);
    EXPECT_NE(tidByName["gpu.sc0.fetch"], tidByName["display.vsync"]);

    std::remove(path.c_str());
}

TEST(EventTracer, CloseIsIdempotentAndCountsRecords)
{
    std::string path = ::testing::TempDir() + "emerald_trace2.json";
    {
        EventTracer tracer(path);
        tracer.onEvent("a.b", 10, 0, 100);
        tracer.onEvent("a.c", 20, 0, 100);
        tracer.close();
        tracer.close();
        EXPECT_EQ(tracer.numRecords(), 2u);
    }
    JsonValue doc = parseJson(readFile(path));
    EXPECT_EQ(doc.kind, JsonValue::Array);
    std::remove(path.c_str());
}

// ------------------------------------------------------------------
// Event profiling
// ------------------------------------------------------------------

TEST(EventProfiler, AttributesEventsByLongestRegisteredPrefix)
{
    Simulation sim;
    sim.enableProfiling();
    EventProfiler &prof = sim.profiler();
    prof.registerComponent("gpu");
    prof.registerComponent("gpu.sc0");
    prof.registerComponent("display");

    NamedEvent deep("gpu.sc0.l1d.send");
    NamedEvent shallow("gpu.l2.recv");
    NamedEvent disp("display.vsync");
    NamedEvent stray("dma.copy");
    sim.eventQueue().schedule(deep, 10);
    sim.eventQueue().schedule(shallow, 20);
    sim.eventQueue().schedule(disp, 30);
    sim.eventQueue().schedule(stray, 40);
    sim.run();

    EXPECT_EQ(prof.eventsFor("gpu.sc0"), 1u);
    EXPECT_EQ(prof.eventsFor("gpu"), 1u);
    EXPECT_EQ(prof.eventsFor("display"), 1u);
    EXPECT_EQ(prof.eventsFor("other"), 1u);
}

TEST(EventProfiler, LateRegistrationReroutesFutureEvents)
{
    Simulation sim;
    sim.enableProfiling();
    EventProfiler &prof = sim.profiler();

    NamedEvent first("dma.copy");
    sim.eventQueue().schedule(first, 10);
    sim.run();
    EXPECT_EQ(prof.eventsFor("other"), 1u);

    prof.registerComponent("dma");
    NamedEvent second("dma.copy");
    sim.eventQueue().schedule(second, 20);
    sim.run();
    EXPECT_EQ(prof.eventsFor("dma"), 1u);
    EXPECT_EQ(prof.eventsFor("other"), 1u);
}

// ------------------------------------------------------------------
// Random::below() rejection sampling
// ------------------------------------------------------------------

TEST(RandomBelow, StaysInBoundsAndIsDeterministic)
{
    Random a(1234), b(1234);
    for (int i = 0; i < 10000; ++i) {
        std::uint64_t v = a.below(77);
        EXPECT_LT(v, 77u);
        EXPECT_EQ(v, b.below(77));
    }
    EXPECT_EQ(a.below(1), 0u);
}

TEST(RandomBelow, HugeBoundsAreNotSystematicallySmall)
{
    // With the old (next() % bound) implementation a bound just above
    // 2^63 maps the top half of the 64-bit range onto [0, 2^63), so
    // ~2/3 of draws land in the lower half. Rejection sampling keeps
    // the halves balanced.
    const std::uint64_t bound = (1ULL << 63) + 3;
    Random r(99);
    int low = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i)
        if (r.below(bound) < bound / 2)
            ++low;
    EXPECT_GT(low, n * 2 / 5);
    EXPECT_LT(low, n * 3 / 5);
}

TEST(RandomBelow, SmallBoundIsRoughlyUniform)
{
    Random r(7);
    int counts[5] = {0, 0, 0, 0, 0};
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        ++counts[r.below(5)];
    for (int c : counts) {
        EXPECT_GT(c, n / 5 * 0.9);
        EXPECT_LT(c, n / 5 * 1.1);
    }
}

// ------------------------------------------------------------------
// TimeSeries hazards
// ------------------------------------------------------------------

TEST(TimeSeriesHazards, ZeroBucketWidthPanics)
{
    StatGroup root("");
    EXPECT_DEATH(
        { TimeSeries ts(root, "bad", "zero width", 0); },
        "zero bucket width");
}

TEST(TimeSeriesHazards, FarFutureSampleIsClampedNotAllocated)
{
    StatGroup root("");
    TimeSeries ts(root, "bw", "clamped", 1);
    // One sample ~2^40 buckets out would previously try to allocate
    // terabytes; it now lands in the last allowed bucket.
    ts.add(Tick(1) << 40, 5.0);
    EXPECT_EQ(ts.buckets().size(), TimeSeries::maxBuckets);
    EXPECT_DOUBLE_EQ(ts.buckets().back(), 5.0);
    EXPECT_EQ(ts.clampedSamples(), 1u);

    ts.reset();
    EXPECT_TRUE(ts.buckets().empty());
    EXPECT_EQ(ts.clampedSamples(), 0u);
}

// ------------------------------------------------------------------
// EventQueue stale-entry compaction
// ------------------------------------------------------------------

TEST(EventQueueCompaction, HeapStaysBoundedUnderRescheduleChurn)
{
    EventQueue eq;
    NamedEvent anchor("anchor");
    eq.schedule(anchor, 1000000);

    NamedEvent churn("churn");
    for (int i = 0; i < 100000; ++i) {
        eq.schedule(churn, 500 + i);
        eq.deschedule(churn);
    }
    // Lazy descheduling leaves stale entries, but compaction keeps
    // the heap O(live): two live-ish events must not hold 100k slots.
    EXPECT_EQ(eq.size(), 1u);
    EXPECT_LT(eq.heapSize(), 1000u);
    EXPECT_EQ(eq.nextTick(), 1000000u);

    EXPECT_TRUE(eq.runOne());
    EXPECT_EQ(anchor.fired, 1);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueueCompaction, RunUntilSurvivesCompactionMidRun)
{
    EventQueue eq;
    std::vector<std::unique_ptr<NamedEvent>> events;
    for (int i = 0; i < 200; ++i) {
        // Built with += rather than operator+ to dodge a GCC 12
        // -Wrestrict false positive (PR105651) under -Werror.
        std::string name = "e";
        name += std::to_string(i);
        events.push_back(std::make_unique<NamedEvent>(name));
        eq.schedule(*events.back(), 10 + i);
    }
    // Deschedule every other event to force staleness, then run.
    for (int i = 0; i < 200; i += 2)
        eq.deschedule(*events[i]);
    std::uint64_t processed = eq.runUntil();
    EXPECT_EQ(processed, 100u);
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(events[i]->fired, i % 2 == 1 ? 1 : 0);
}

// ------------------------------------------------------------------
// Config argument forms
// ------------------------------------------------------------------

TEST(ConfigParse, SupportsEqualsSpaceAndBareFlagForms)
{
    const char *argv[] = {"prog",       "--width=640", "--stats-json",
                          "out.json",   "--profile",   "--frames",
                          "3"};
    Config cfg;
    cfg.parseArgs(7, const_cast<char **>(argv));
    EXPECT_EQ(cfg.getInt("width", 0), 640);
    EXPECT_EQ(cfg.getString("stats-json", ""), "out.json");
    EXPECT_TRUE(cfg.getBool("profile", false));
    EXPECT_EQ(cfg.getInt("frames", 0), 3);
}

TEST(ConfigParse, AcceptsFullNumericRange)
{
    Config cfg;
    cfg.set("n", "-42");
    EXPECT_EQ(cfg.getInt("n", 0), -42);
    cfg.set("n", "0x20");
    EXPECT_EQ(cfg.getInt("n", 0), 0x20);
    cfg.set("n", "9223372036854775807");
    EXPECT_EQ(cfg.getInt("n", 0), INT64_MAX);
    cfg.set("n", "18446744073709551615");
    EXPECT_EQ(cfg.getU64("n", 0), UINT64_MAX);
    cfg.set("alpha", "2.5e-3");
    EXPECT_DOUBLE_EQ(cfg.getDouble("alpha", 0.0), 2.5e-3);
    // Denormal underflow is tiny-but-valid, not an error.
    cfg.set("alpha", "1e-320");
    EXPECT_GT(cfg.getDouble("alpha", 0.0), 0.0);
}

TEST(ConfigParse, TrailingGarbageOnIntIsFatal)
{
    Config cfg;
    cfg.set("n", "12x");
    EXPECT_DEATH(cfg.getInt("n", 0), "is not an integer");
    cfg.set("n", "3 4");
    EXPECT_DEATH(cfg.getInt("n", 0), "is not an integer");
    cfg.set("n", "");
    EXPECT_DEATH(cfg.getInt("n", 0), "is not an integer");
}

TEST(ConfigParse, IntOverflowIsFatal)
{
    Config cfg;
    cfg.set("n", "9223372036854775808"); // INT64_MAX + 1.
    EXPECT_DEATH(cfg.getInt("n", 0), "overflows a 64-bit integer");
    cfg.set("n", "18446744073709551616"); // UINT64_MAX + 1.
    EXPECT_DEATH(cfg.getU64("n", 0), "overflows a 64-bit integer");
}

TEST(ConfigParse, NegativeOrMalformedU64IsFatal)
{
    Config cfg;
    cfg.set("n", "-3");
    EXPECT_DEATH(cfg.getU64("n", 0), "not a non-negative integer");
    cfg.set("n", "7q");
    EXPECT_DEATH(cfg.getU64("n", 0), "not a non-negative integer");
}

TEST(ConfigParse, MalformedOrOverflowingDoubleIsFatal)
{
    Config cfg;
    cfg.set("alpha", "1.5pt");
    EXPECT_DEATH(cfg.getDouble("alpha", 0.0), "is not a number");
    cfg.set("alpha", "");
    EXPECT_DEATH(cfg.getDouble("alpha", 0.0), "is not a number");
    cfg.set("alpha", "1e999");
    EXPECT_DEATH(cfg.getDouble("alpha", 0.0), "overflows a double");
}
