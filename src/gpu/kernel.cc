#include "gpu/kernel.hh"

#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace emerald::gpu
{

KernelDispatcher::KernelDispatcher(Simulation &sim,
                                   const std::string &name, GpuTop &gpu)
    : SimObject(sim, name), Clocked(gpu.coreClock(), name), _gpu(gpu)
{
    registerCheckpointEvent(tickEvent());
}

void
KernelDispatcher::serialize(CheckpointOut &out) const
{
    panic_if(busy(), "%s: serialize with kernels in flight",
             name().c_str());
    out.putU64("next_core", _nextCore);
    out.putI64("next_cta_key", _nextCtaKey);
}

void
KernelDispatcher::unserialize(CheckpointIn &in)
{
    _nextCore = static_cast<unsigned>(in.getU64("next_core"));
    _nextCtaKey = static_cast<int>(in.getI64("next_cta_key"));
}

void
KernelDispatcher::launch(KernelLaunch launch)
{
    panic_if(!launch.program, "kernel launch without program");
    panic_if(launch.threadsPerCta() == 0, "empty CTA");
    _pending.push_back(std::move(launch));
    activate();
}

bool
KernelDispatcher::dispatchNextCta()
{
    ActiveKernel &kernel = *_current;
    if (kernel.nextCta >= kernel.launch.numCtas())
        return false;

    unsigned warps = kernel.launch.warpsPerCta();
    // Find a core that can take the whole CTA (barriers require
    // co-location).
    for (unsigned attempt = 0; attempt < _gpu.numCores(); ++attempt) {
        unsigned core_idx = (_nextCore + attempt) % _gpu.numCores();
        SimtCore &core = _gpu.core(core_idx);
        if (core.queuedTasks() + warps >
            core.params().taskQueueDepth) {
            continue;
        }

        unsigned cta_index = kernel.nextCta;
        unsigned cta_x = cta_index % kernel.launch.gridX;
        unsigned cta_y = cta_index / kernel.launch.gridX;

        auto cta = std::make_unique<CtaState>();
        cta->sharedMem.resize(kernel.launch.sharedBytesPerCta, 0);
        cta->warpsOutstanding = warps;
        CtaState *cta_ptr = cta.get();
        kernel.ctas.push_back(std::move(cta));
        ++kernel.ctasOutstanding;

        int cta_key = _nextCtaKey++;
        unsigned threads = kernel.launch.threadsPerCta();

        for (unsigned w = 0; w < warps; ++w) {
            WarpTask task;
            task.type = WarpTaskType::Compute;
            task.program = kernel.launch.program;
            task.ctaKey = cta_key;
            task.ctaWarps = warps;
            task.env.global = kernel.launch.memory;
            task.env.constants = kernel.launch.constants.data();
            task.env.numConstants = static_cast<unsigned>(
                kernel.launch.constants.size());
            task.env.sharedMem = cta_ptr->sharedMem.data();
            task.env.sharedSize = static_cast<unsigned>(
                cta_ptr->sharedMem.size());

            std::uint32_t mask = 0;
            for (unsigned lane = 0; lane < isa::warpSize; ++lane) {
                unsigned tid = w * isa::warpSize + lane;
                if (tid >= threads)
                    break;
                mask |= 1u << lane;
                isa::ThreadContext &t = task.threads[lane];
                t.tidX = tid % kernel.launch.blockX;
                t.tidY = tid / kernel.launch.blockX;
                t.ctaIdX = cta_x;
                t.ctaIdY = cta_y;
                t.ntidX = kernel.launch.blockX;
                t.ntidY = kernel.launch.blockY;
            }
            task.activeMask = mask;

            unsigned cta_slot =
                static_cast<unsigned>(kernel.ctas.size()) - 1;
            task.onComplete = [this, cta_slot](WarpTask &,
                                               isa::ThreadContext *) {
                warpFinished(cta_slot);
            };

            bool accepted = core.tryAddTask(std::move(task));
            panic_if(!accepted, "core rejected CTA warp after check");
        }

        ++kernel.nextCta;
        _nextCore = (core_idx + 1) % _gpu.numCores();
        return true;
    }
    return false;
}

void
KernelDispatcher::warpFinished(unsigned cta_index)
{
    ActiveKernel &kernel = *_current;
    CtaState &cta = *kernel.ctas[cta_index];
    panic_if(cta.warpsOutstanding == 0, "CTA warp over-completion");
    if (--cta.warpsOutstanding == 0)
        --kernel.ctasOutstanding;
    activate();
}

bool
KernelDispatcher::tick()
{
    if (!_current) {
        if (_pending.empty())
            return false;
        _current = std::make_unique<ActiveKernel>();
        _current->launch = std::move(_pending.front());
        _pending.pop_front();
    }

    while (dispatchNextCta()) {
    }

    ActiveKernel &kernel = *_current;
    if (kernel.nextCta >= kernel.launch.numCtas() &&
        kernel.ctasOutstanding == 0) {
        auto done = std::move(kernel.launch.onDone);
        _current.reset();
        if (done)
            done();
        return busy();
    }
    return true;
}

} // namespace emerald::gpu
