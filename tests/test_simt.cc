#include <gtest/gtest.h>

#include "gpu/coalescer.hh"
#include "gpu/isa/assembler.hh"
#include "gpu/scoreboard.hh"
#include "gpu/simt_stack.hh"

using namespace emerald;
using namespace emerald::gpu;
using namespace emerald::gpu::isa;

namespace
{

Instruction
braInstr(int target, int rpc, int guard = 0)
{
    Instruction instr;
    instr.op = Opcode::BRA;
    instr.target = target;
    instr.reconvergePc = rpc;
    instr.guard = guard;
    return instr;
}

} // namespace

TEST(SimtStack, UniformExecutionAdvances)
{
    SimtStack stack;
    stack.reset(0xffffffffu);
    EXPECT_EQ(stack.pc(), 0);
    EXPECT_EQ(stack.activeMask(), 0xffffffffu);
    stack.advance();
    EXPECT_EQ(stack.pc(), 1);
    EXPECT_EQ(stack.depth(), 1u);
}

TEST(SimtStack, DivergenceAndReconvergence)
{
    SimtStack stack;
    stack.reset(0xffffffffu);
    // Branch at pc 0: lanes 0-15 taken (to pc 10), reconverge pc 20.
    stack.branch(braInstr(10, 20), 0x0000ffffu, 0xffffffffu);

    // Taken path executes first.
    EXPECT_EQ(stack.pc(), 10);
    EXPECT_EQ(stack.activeMask(), 0x0000ffffu);
    EXPECT_EQ(stack.depth(), 3u);

    // Walk the taken path to the reconvergence point.
    for (int pc = 10; pc < 20; ++pc)
        stack.advance();

    // Now the not-taken path (fallthrough pc 1).
    EXPECT_EQ(stack.pc(), 1);
    EXPECT_EQ(stack.activeMask(), 0xffff0000u);
    for (int pc = 1; pc < 20; ++pc)
        stack.advance();

    // Full mask restored at the reconvergence point.
    EXPECT_EQ(stack.pc(), 20);
    EXPECT_EQ(stack.activeMask(), 0xffffffffu);
    EXPECT_EQ(stack.depth(), 1u);
}

TEST(SimtStack, UniformTakenBranchJustJumps)
{
    SimtStack stack;
    stack.reset(0xfu);
    stack.branch(braInstr(7, 9), 0xfu, 0xfu);
    EXPECT_EQ(stack.pc(), 7);
    EXPECT_EQ(stack.depth(), 1u);
}

TEST(SimtStack, BranchTargetAtReconvergenceMergesImmediately)
{
    // Guarded jump straight to the join label: the taken entry starts
    // at the reconvergence pc and must merge at once (the bug behind
    // a barrier deadlock found during bring-up).
    SimtStack stack;
    stack.reset(0xffu);
    stack.branch(braInstr(5, 5), 0x0fu, 0xffu);
    // Taken lanes merged; not-taken path executes pc 1..4 first.
    EXPECT_EQ(stack.pc(), 1);
    EXPECT_EQ(stack.activeMask(), 0xf0u);
    for (int pc = 1; pc < 5; ++pc)
        stack.advance();
    EXPECT_EQ(stack.pc(), 5);
    EXPECT_EQ(stack.activeMask(), 0xffu);
    EXPECT_EQ(stack.depth(), 1u);
}

TEST(SimtStack, NestedDivergence)
{
    SimtStack stack;
    stack.reset(0xffffffffu);
    stack.branch(braInstr(10, 30), 0x0000ffffu, 0xffffffffu);
    EXPECT_EQ(stack.pc(), 10);
    // Nested branch inside the taken path.
    stack.branch(braInstr(20, 25), 0x000000ffu, 0xffffffffu);
    EXPECT_EQ(stack.pc(), 20);
    EXPECT_EQ(stack.activeMask(), 0x000000ffu);
    EXPECT_EQ(stack.depth(), 5u);

    for (int pc = 20; pc < 25; ++pc)
        stack.advance();
    EXPECT_EQ(stack.pc(), 11); // Inner not-taken.
    for (int pc = 11; pc < 25; ++pc)
        stack.advance();
    EXPECT_EQ(stack.pc(), 25);
    EXPECT_EQ(stack.activeMask(), 0x0000ffffu);
}

TEST(SimtStack, PruneDeadPopsEmptyEntries)
{
    SimtStack stack;
    stack.reset(0xffffffffu);
    stack.branch(braInstr(10, 20), 0x0000ffffu, 0xffffffffu);
    // All taken lanes exit.
    stack.pruneDead(0xffff0000u);
    EXPECT_EQ(stack.pc(), 1);
    EXPECT_EQ(stack.activeMask(), 0xffff0000u);

    // Everyone exits.
    stack.pruneDead(0);
    EXPECT_TRUE(stack.empty());
}

TEST(Coalescer, SequentialAccessesShareLine)
{
    std::vector<ThreadMemAccess> accesses;
    for (unsigned i = 0; i < 32; ++i)
        accesses.push_back({0x1000 + i * 4, 4, false});
    auto lines = coalesce(accesses, 128);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0].lineAddr, 0x1000u);
}

TEST(Coalescer, StridedAccessesSplit)
{
    std::vector<ThreadMemAccess> accesses;
    for (unsigned i = 0; i < 32; ++i)
        accesses.push_back({Addr(i) * 128, 4, false});
    auto lines = coalesce(accesses, 128);
    EXPECT_EQ(lines.size(), 32u);
}

TEST(Coalescer, ReadsAndWritesStayDistinct)
{
    std::vector<ThreadMemAccess> accesses = {
        {0x1000, 4, false},
        {0x1004, 4, true},
    };
    auto lines = coalesce(accesses, 128);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_FALSE(lines[0].write);
    EXPECT_TRUE(lines[1].write);
}

TEST(Coalescer, PreservesFirstTouchOrder)
{
    std::vector<ThreadMemAccess> accesses = {
        {0x2000, 4, false},
        {0x1000, 4, false},
        {0x2004, 4, false},
    };
    auto lines = coalesce(accesses, 128);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0].lineAddr, 0x2000u);
    EXPECT_EQ(lines[1].lineAddr, 0x1000u);
}

TEST(Scoreboard, RawAndWawHazards)
{
    Scoreboard sb(4);
    Program p = assemble("t", R"(
        add.f32 r2, r0, r1
        add.f32 r3, r2, r1
        add.f32 r2, r4, r5
        add.f32 r6, r4, r5
        exit
    )");

    // Issue instr 0: r2 pending.
    EXPECT_TRUE(sb.ready(0, p.code[0]));
    sb.markPending(0, Scoreboard::destSlots(p.code[0]));

    EXPECT_FALSE(sb.ready(0, p.code[1])); // RAW on r2.
    EXPECT_FALSE(sb.ready(0, p.code[2])); // WAW on r2.
    EXPECT_TRUE(sb.ready(0, p.code[3]));  // Independent.
    EXPECT_TRUE(sb.ready(1, p.code[1]));  // Other warp unaffected.

    sb.release(0, Scoreboard::destSlots(p.code[0]));
    EXPECT_TRUE(sb.ready(0, p.code[1]));
    EXPECT_TRUE(sb.idle(0));
}

TEST(Scoreboard, PredicateDependencies)
{
    Scoreboard sb(1);
    Program p = assemble("t", R"(
        setp.lt.f32 p0, r0, r1
        @p0 mov.f32 r2, 1.0
        exit
    )");
    sb.markPending(0, Scoreboard::destSlots(p.code[0]));
    EXPECT_FALSE(sb.ready(0, p.code[1])); // Guard depends on p0.
    sb.release(0, Scoreboard::destSlots(p.code[0]));
    EXPECT_TRUE(sb.ready(0, p.code[1]));
}

TEST(Scoreboard, TexWritesQuad)
{
    Scoreboard sb(1);
    Program p = assemble("t", R"(
        tex.2d r4, t0, r0, r1
        add.f32 r8, r6, r7
        exit
    )");
    auto dests = Scoreboard::destSlots(p.code[0]);
    EXPECT_EQ(dests.size(), 4u);
    sb.markPending(0, dests);
    EXPECT_FALSE(sb.ready(0, p.code[1])); // r6/r7 in the quad.
}
