#include "core/rasterizer.hh"

#include <algorithm>
#include <cmath>

namespace emerald::core
{

ScreenVertex
viewportTransform(const Vec4 &clip_pos, const float *attrs,
                  unsigned num_varyings, unsigned fb_width,
                  unsigned fb_height)
{
    ScreenVertex out;
    float inv_w = 1.0f / clip_pos.w;
    float ndc_x = clip_pos.x * inv_w;
    float ndc_y = clip_pos.y * inv_w;
    float ndc_z = clip_pos.z * inv_w;
    out.x = (ndc_x * 0.5f + 0.5f) * static_cast<float>(fb_width);
    // Screen y grows downward.
    out.y = (0.5f - ndc_y * 0.5f) * static_cast<float>(fb_height);
    out.z = ndc_z * 0.5f + 0.5f;
    out.invW = inv_w;
    for (unsigned i = 0; i < num_varyings && i < maxVaryings; ++i)
        out.attrsOverW[i] = attrs[i] * inv_w;
    return out;
}

bool
setupPrimitive(const ScreenVertex verts[3], unsigned fb_width,
               unsigned fb_height, bool cull_backface, SetupPrim &out)
{
    out.v = {verts[0], verts[1], verts[2]};

    auto signed_area2 = [](const ScreenVertex &a, const ScreenVertex &b,
                           const ScreenVertex &c) {
        return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
    };

    float area2 = signed_area2(out.v[0], out.v[1], out.v[2]);
    if (area2 == 0.0f)
        return false;
    if (area2 < 0.0f) {
        if (cull_backface)
            return false;
        std::swap(out.v[1], out.v[2]);
        area2 = -area2;
    }
    out.area2 = area2;

    // Edge i is opposite vertex i: positive inside.
    for (int i = 0; i < 3; ++i) {
        const ScreenVertex &a = out.v[(i + 1) % 3];
        const ScreenVertex &b = out.v[(i + 2) % 3];
        out.edgeA[i] = a.y - b.y;
        out.edgeB[i] = b.x - a.x;
        out.edgeC[i] = a.x * b.y - a.y * b.x;
    }

    float min_x = std::min({out.v[0].x, out.v[1].x, out.v[2].x});
    float max_x = std::max({out.v[0].x, out.v[1].x, out.v[2].x});
    float min_y = std::min({out.v[0].y, out.v[1].y, out.v[2].y});
    float max_y = std::max({out.v[0].y, out.v[1].y, out.v[2].y});

    int px0 = std::max(0, static_cast<int>(std::floor(min_x)));
    int py0 = std::max(0, static_cast<int>(std::floor(min_y)));
    int px1 = std::min(static_cast<int>(fb_width) - 1,
                       static_cast<int>(std::ceil(max_x)));
    int py1 = std::min(static_cast<int>(fb_height) - 1,
                       static_cast<int>(std::ceil(max_y)));
    if (px0 > px1 || py0 > py1)
        return false;

    out.tileX0 = px0 / static_cast<int>(rasterTilePx);
    out.tileY0 = py0 / static_cast<int>(rasterTilePx);
    out.tileX1 = px1 / static_cast<int>(rasterTilePx);
    out.tileY1 = py1 / static_cast<int>(rasterTilePx);
    return true;
}

bool
rasterizeTile(const SetupPrim &prim, int tx, int ty,
              unsigned num_varyings, unsigned fb_width,
              unsigned fb_height, FragmentTile &out)
{
    out.tileX = tx;
    out.tileY = ty;
    out.coverMask = 0;

    const float inv_area = 1.0f / prim.area2;
    const int base_x = tx * static_cast<int>(rasterTilePx);
    const int base_y = ty * static_cast<int>(rasterTilePx);

    for (unsigned py = 0; py < rasterTilePx; ++py) {
        int y = base_y + static_cast<int>(py);
        if (y >= static_cast<int>(fb_height))
            break;
        for (unsigned px = 0; px < rasterTilePx; ++px) {
            int x = base_x + static_cast<int>(px);
            if (x >= static_cast<int>(fb_width))
                break;
            float cx = static_cast<float>(x) + 0.5f;
            float cy = static_cast<float>(y) + 0.5f;

            float e[3];
            bool inside = true;
            for (int i = 0; i < 3; ++i) {
                e[i] = prim.edgeA[i] * cx + prim.edgeB[i] * cy +
                       prim.edgeC[i];
                if (e[i] < 0.0f) {
                    inside = false;
                    break;
                }
                if (e[i] == 0.0f) {
                    // Top-left fill rule on shared edges.
                    bool top_left =
                        prim.edgeA[i] > 0.0f ||
                        (prim.edgeA[i] == 0.0f && prim.edgeB[i] < 0.0f);
                    if (!top_left) {
                        inside = false;
                        break;
                    }
                }
            }
            if (!inside)
                continue;

            float b0 = e[0] * inv_area;
            float b1 = e[1] * inv_area;
            float b2 = e[2] * inv_area;

            unsigned slot = py * rasterTilePx + px;
            out.coverMask |= static_cast<std::uint16_t>(1u << slot);
            out.z[slot] = b0 * prim.v[0].z + b1 * prim.v[1].z +
                          b2 * prim.v[2].z;

            float inv_w = b0 * prim.v[0].invW + b1 * prim.v[1].invW +
                          b2 * prim.v[2].invW;
            float w = inv_w != 0.0f ? 1.0f / inv_w : 0.0f;
            for (unsigned i = 0; i < num_varyings && i < maxVaryings;
                 ++i) {
                float over_w = b0 * prim.v[0].attrsOverW[i] +
                               b1 * prim.v[1].attrsOverW[i] +
                               b2 * prim.v[2].attrsOverW[i];
                out.attrs[slot][i] = over_w * w;
            }
        }
    }
    return out.coverMask != 0;
}

} // namespace emerald::core
