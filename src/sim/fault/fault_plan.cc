#include "sim/fault/fault_plan.hh"

#include <cctype>
#include <cstdlib>

#include "sim/logging.hh"

namespace emerald::fault
{

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::OfferBurst: return "offer-burst";
      case FaultKind::DramStall: return "dram-stall";
      case FaultKind::LinkDelay: return "link-delay";
      case FaultKind::DupWake: return "dup-wake";
      case FaultKind::WakeSuppress: return "wake-suppress";
      default: return "unknown";
    }
}

bool
FaultSite::activeAt(Tick now) const
{
    if (now < start)
        return false;
    if (period == 0)
        return len == 0 || now < start + len;
    return (now - start) % period < len;
}

Tick
FaultSite::windowEnd(Tick now) const
{
    if (period == 0)
        return len == 0 ? maxTick : start + len;
    Tick windowStart = now - (now - start) % period;
    return windowStart + len;
}

namespace
{

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

FaultKind
parseKind(const std::string &name)
{
    if (name == "offer-burst")
        return FaultKind::OfferBurst;
    if (name == "dram-stall")
        return FaultKind::DramStall;
    if (name == "link-delay")
        return FaultKind::LinkDelay;
    if (name == "dup-wake")
        return FaultKind::DupWake;
    if (name == "wake-suppress")
        return FaultKind::WakeSuppress;
    fatal("--fault-plan: unknown fault kind '%s' (expected offer-burst, "
          "dram-stall, link-delay, dup-wake or wake-suppress)",
          name.c_str());
}

double
parseProb(const std::string &text)
{
    char *end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || v < 0.0 || v > 1.0)
        fatal("--fault-plan: bad prob '%s' (expected 0..1)", text.c_str());
    return v;
}

std::uint64_t
parseCount(const std::string &text)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0')
        fatal("--fault-plan: bad count '%s'", text.c_str());
    return v;
}

void
applyKey(FaultSite &site, const std::string &key, const std::string &value)
{
    if (key == "match")
        site.match = value;
    else if (key == "start")
        site.start = parseDuration(value, "--fault-plan start");
    else if (key == "len")
        site.len = parseDuration(value, "--fault-plan len");
    else if (key == "period")
        site.period = parseDuration(value, "--fault-plan period");
    else if (key == "prob")
        site.prob = parseProb(value);
    else if (key == "count")
        site.count = parseCount(value);
    else if (key == "delay")
        site.delay = parseDuration(value, "--fault-plan delay");
    else
        fatal("--fault-plan: unknown key '%s' (expected match, start, len, "
              "period, prob, count or delay)", key.c_str());
}

void
validateSite(const FaultSite &site)
{
    if (site.kind == FaultKind::DramStall && site.len == 0)
        fatal("--fault-plan: dram-stall requires len>0 (an open-ended "
              "stall can never make progress)");
    if (site.period != 0 && site.len == 0)
        fatal("--fault-plan: period without len describes windows that "
              "never open");
    if (site.period != 0 && site.len > site.period)
        fatal("--fault-plan: len must not exceed period");
}

FaultSite
parseSite(const std::string &text)
{
    std::size_t open = text.find('(');
    FaultSite site;
    if (open == std::string::npos) {
        site.kind = parseKind(trim(text));
        validateSite(site);
        return site;
    }
    if (text.back() != ')')
        fatal("--fault-plan: missing ')' in '%s'", text.c_str());
    site.kind = parseKind(trim(text.substr(0, open)));
    std::string body = text.substr(open + 1, text.size() - open - 2);
    std::size_t pos = 0;
    while (pos < body.size()) {
        std::size_t comma = body.find(',', pos);
        if (comma == std::string::npos)
            comma = body.size();
        std::string kv = trim(body.substr(pos, comma - pos));
        pos = comma + 1;
        if (kv.empty())
            continue;
        std::size_t eq = kv.find('=');
        if (eq == std::string::npos)
            fatal("--fault-plan: expected key=value, got '%s'", kv.c_str());
        applyKey(site, trim(kv.substr(0, eq)), trim(kv.substr(eq + 1)));
    }
    validateSite(site);
    return site;
}

} // namespace

FaultPlan
FaultPlan::parse(const std::string &text)
{
    FaultPlan plan;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        std::size_t semi = text.find(';', pos);
        if (semi == std::string::npos)
            semi = text.size();
        std::string token = trim(text.substr(pos, semi - pos));
        pos = semi + 1;
        if (token.empty())
            continue;
        plan._sites.push_back(parseSite(token));
    }
    return plan;
}

Tick
parseDuration(const std::string &text, const std::string &what)
{
    if (text.empty())
        fatal("%s: empty duration", what.c_str());
    char *end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || v < 0.0)
        fatal("%s: bad duration '%s'", what.c_str(), text.c_str());
    std::string suffix = trim(end);
    if (suffix.empty()) {
        // Bare number: raw ticks (picoseconds).
        return static_cast<Tick>(v + 0.5);
    }
    if (suffix == "ns")
        return ticksFromNs(v);
    if (suffix == "us")
        return ticksFromUs(v);
    if (suffix == "ms")
        return ticksFromMs(v);
    if (suffix == "s")
        return static_cast<Tick>(v * static_cast<double>(ticksPerSecond) +
                                 0.5);
    fatal("%s: bad duration suffix '%s' (expected ns, us, ms or s)",
          what.c_str(), suffix.c_str());
}

} // namespace emerald::fault
