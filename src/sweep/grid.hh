/**
 * @file
 * Declarative sweep grids: a line-oriented spec names one scenario,
 * fixes some keys and sweeps others, and expandGrid() turns it into
 * the cartesian product of points the orchestrator runs.
 *
 * Grammar (one directive per line, '#' starts a comment):
 *
 *   scenario = soc_point          # bench::ScenarioRegistry name
 *   fixed.frames = 3              # same value at every point
 *   axis.config = BAS,DCB,DTB,HMC # one point per listed value
 *   axis.fps = 30,60
 *   skip = config=HMC,channels=1  # drop points matching ALL pairs
 *   restore = ckpt/warm           # fork every point from this
 *                                 # checkpoint (--restore)
 *   replay = traces/fig12         # drive every point from this
 *                                 # trace root (--replay-trace)
 *
 * A point's fingerprint is computed by the same sweepPointFingerprint
 * the child bench uses, so the orchestrator and the results store
 * always agree on identity (docs/sweeps.md).
 */

#ifndef EMERALD_SWEEP_GRID_HH
#define EMERALD_SWEEP_GRID_HH

#include <string>
#include <utility>
#include <vector>

namespace emerald
{
namespace sweep
{

/** Parsed grid spec. */
struct SweepSpec
{
    /** Scenario to run at every point (bench --run=<name>). */
    std::string scenario = "soc_point";
    /** Keys fixed to one value across the whole grid. */
    std::vector<std::pair<std::string, std::string>> fixed;
    /** Swept keys, in declaration order, each with its values. */
    std::vector<std::pair<std::string, std::vector<std::string>>> axes;
    /** Each entry drops points matching ALL of its key=value pairs. */
    std::vector<std::vector<std::pair<std::string, std::string>>> skips;
    /** Warm checkpoint every point restores from ("" = cold). */
    std::string restoreDir;
    /** Trace root every point replays from ("" = execution-driven). */
    std::string replayDir;
};

/** One expanded grid point. */
struct SweepPoint
{
    /** The point's key=value pairs (fixed + axis), sorted by key. */
    std::vector<std::pair<std::string, std::string>> params;
    /** sweepPointFingerprintHex() of those params. */
    std::string fingerprintHex;
};

/** Parse spec text; fatal on malformed or unknown directives. */
SweepSpec parseSweepSpec(const std::string &text);

/** Read and parse a spec file; fatal if unreadable. */
SweepSpec loadSweepSpec(const std::string &path);

/**
 * The cartesian product of @p spec's axes over its fixed keys, minus
 * skipped points, fingerprinted. Point order follows axis declaration
 * order (last axis varies fastest). Fatal on duplicate keys between
 * fixed and axes, or on an empty axis.
 */
std::vector<SweepPoint> expandGrid(const SweepSpec &spec);

/**
 * Stable hash of the grid definition (scenario, fixed, axes, skips —
 * not the drive-mode restore/replay directories), used by the
 * orchestrator's resume guard: resuming into an existing results DB
 * with a different grid is fatal.
 */
std::string specHash(const SweepSpec &spec);

} // namespace sweep
} // namespace emerald

#endif // EMERALD_SWEEP_GRID_HH
