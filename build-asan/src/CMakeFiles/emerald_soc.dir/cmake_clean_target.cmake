file(REMOVE_RECURSE
  "libemerald_soc.a"
)
