/**
 * @file
 * Near-miss suggestion helper shared by the CLI parser and the
 * scheduler-policy registries: given a user-typed name and the set of
 * valid names, find the closest candidate worth suggesting in a
 * "did you mean ...?" diagnostic.
 */

#ifndef EMERALD_SIM_NEAREST_HH
#define EMERALD_SIM_NEAREST_HH

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

namespace emerald
{

/** Classic Levenshtein distance (names are short; O(n*m) is fine). */
inline std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diag = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            std::size_t prev = row[j];
            row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                               diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
            diag = prev;
        }
    }
    return row[b.size()];
}

/**
 * Closest candidate within an edit distance worth suggesting, or ""
 * when nothing is close enough to be a plausible typo.
 */
inline std::string
nearestMatch(const std::string &name,
             const std::vector<std::string> &candidates)
{
    std::string best;
    std::size_t best_dist = std::max<std::size_t>(2, name.size() / 3);
    for (const std::string &candidate : candidates) {
        std::size_t d = editDistance(name, candidate);
        if (d <= best_dist) {
            best_dist = d - 1; // Strictly better from now on.
            best = candidate;
        }
    }
    return best;
}

} // namespace emerald

#endif // EMERALD_SIM_NEAREST_HH
