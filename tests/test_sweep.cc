/**
 * @file
 * Sweep driver tests: grid expansion, point fingerprints, the resume
 * computation, the manifest, the stats sinks (URI dispatch, legacy
 * JSON byte-compatibility) and — when SQLite is compiled in — the
 * results-store round trip the orchestrator's journal rests on.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/stats_sink.hh"
#include "sweep/db.hh"
#include "sweep/grid.hh"
#include "sweep/manifest.hh"
#include "sweep/orchestrator.hh"

#ifdef EMERALD_HAS_SQLITE
#include <sqlite3.h>
#endif

using namespace emerald;
using namespace emerald::sweep;

namespace
{

std::string
tempPath(const std::string &leaf)
{
    return ::testing::TempDir() + "emerald_sweep_" + leaf;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.is_open()) << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

// ------------------------------------------------------------------
// Grid expansion.
// ------------------------------------------------------------------

TEST(SweepGrid, ExpandsCartesianProductInAxisOrder)
{
    SweepSpec spec = parseSweepSpec(
        "scenario = soc_point\n"
        "fixed.quick = 1\n"
        "axis.config = BAS,DCB\n"
        "axis.fps = 30,60,120\n");
    EXPECT_EQ(spec.scenario, "soc_point");

    auto points = expandGrid(spec);
    ASSERT_EQ(points.size(), 6u);
    // Last axis varies fastest; params come back sorted by key.
    EXPECT_EQ(points[0].params,
              (std::vector<std::pair<std::string, std::string>>{
                  {"config", "BAS"}, {"fps", "30"}, {"quick", "1"}}));
    EXPECT_EQ(points[1].params[1].second, "60");
    EXPECT_EQ(points[3].params[0].second, "DCB");

    // Every point gets a distinct fingerprint.
    for (std::size_t i = 0; i < points.size(); ++i)
        for (std::size_t j = i + 1; j < points.size(); ++j)
            EXPECT_NE(points[i].fingerprintHex,
                      points[j].fingerprintHex);
}

TEST(SweepGrid, SkipDirectiveFiltersMatchingPoints)
{
    SweepSpec spec = parseSweepSpec(
        "axis.config = BAS,DCB,HMC\n"
        "axis.channels = 1,2\n"
        "skip = config=HMC,channels=1\n");
    auto points = expandGrid(spec);
    EXPECT_EQ(points.size(), 5u);
    for (const SweepPoint &point : points) {
        bool hmc1 = point.params[1].second == "HMC" &&
                    point.params[0].second == "1";
        EXPECT_FALSE(hmc1);
    }
}

TEST(SweepGrid, ParsesCommentsRestoreReplayAndWhitespace)
{
    SweepSpec spec = parseSweepSpec(
        "# a comment\n"
        "  scenario = fig12_memsched_highload  # trailing\n"
        "\n"
        "restore = ckpt/warm\n"
        "replay = traces/fig12\n"
        "axis.fps =  30 , 60 \n");
    EXPECT_EQ(spec.scenario, "fig12_memsched_highload");
    EXPECT_EQ(spec.restoreDir, "ckpt/warm");
    EXPECT_EQ(spec.replayDir, "traces/fig12");
    ASSERT_EQ(spec.axes.size(), 1u);
    EXPECT_EQ(spec.axes[0].second,
              (std::vector<std::string>{"30", "60"}));
}

TEST(SweepGrid, BracketsShieldAxisValueCommas)
{
    // A fault plan's own commas sit inside (), so the two plans
    // below are two axis values, not five.
    SweepSpec spec = parseSweepSpec(
        "axis.fault-plan = offer-reject(match=l2,start=1us,prob=0.5),"
        "dram-stall(len=2us,period=8us)\n");
    ASSERT_EQ(spec.axes.size(), 1u);
    EXPECT_EQ(spec.axes[0].second,
              (std::vector<std::string>{
                  "offer-reject(match=l2,start=1us,prob=0.5)",
                  "dram-stall(len=2us,period=8us)"}));
}

TEST(SweepGrid, BackslashEscapesAxisValueCommas)
{
    SweepSpec spec = parseSweepSpec(
        "axis.tag = a\\,b,c\n");
    ASSERT_EQ(spec.axes.size(), 1u);
    EXPECT_EQ(spec.axes[0].second,
              (std::vector<std::string>{"a,b", "c"}));
}

TEST(SweepGridDeathTest, RejectsMalformedSpecs)
{
    EXPECT_EXIT(parseSweepSpec("bogus = 1\n"),
                ::testing::ExitedWithCode(1), "unknown directive");
    EXPECT_EXIT(parseSweepSpec("axis.fps = 30,,60\n"),
                ::testing::ExitedWithCode(1), "empty axis value");
    EXPECT_EXIT(parseSweepSpec("axis.plan = stall(len=1us\n"),
                ::testing::ExitedWithCode(1), "unbalanced brackets");
    EXPECT_EXIT(parseSweepSpec("axis.plan = stall)\n"),
                ::testing::ExitedWithCode(1), "unbalanced brackets");
    EXPECT_EXIT(parseSweepSpec("axis.tag = a\\\n"),
                ::testing::ExitedWithCode(1), "dangling backslash");
    EXPECT_EXIT(
        expandGrid(parseSweepSpec(
            "fixed.fps = 30\naxis.fps = 30,60\n")),
        ::testing::ExitedWithCode(1), "more than once");
}

TEST(SweepGrid, SpecHashTracksGridNotDriveMode)
{
    SweepSpec a = parseSweepSpec("axis.fps = 30,60\n");
    SweepSpec b = parseSweepSpec(
        "axis.fps = 30,60\nreplay = traces\n");
    SweepSpec c = parseSweepSpec("axis.fps = 30,61\n");
    EXPECT_EQ(specHash(a), specHash(b));
    EXPECT_NE(specHash(a), specHash(c));
}

// ------------------------------------------------------------------
// Point fingerprints.
// ------------------------------------------------------------------

TEST(SweepFingerprint, IgnoresIoObservabilityAndDriveModeKeys)
{
    Config design;
    design.set("config", "DCB");
    design.set("fps", "60");

    Config driven = design;
    driven.set("stats-out", "sqlite:runs.db");
    driven.set("run", "soc_point");
    driven.set("git-sha", "abc");
    driven.set("restore", "ckpt/warm");
    driven.set("replay-trace", "traces");
    driven.set("capture-trace", "traces2");
    driven.set("jobs", "8");

    EXPECT_EQ(sweepPointFingerprint(design),
              sweepPointFingerprint(driven));
    EXPECT_EQ(sweepPointParams(driven).size(), 2u);

    driven.set("fps", "30");
    EXPECT_NE(sweepPointFingerprint(design),
              sweepPointFingerprint(driven));
}

TEST(SweepFingerprint, CkptShareKeysNarrowsScopeNotIdentity)
{
    Config a;
    a.set("config", "BAS");
    a.set("fps", "30");
    Config b;
    b.set("config", "BAS");
    b.set("fps", "60");
    EXPECT_NE(sweepPointFingerprint(a), sweepPointFingerprint(b));
    EXPECT_NE(ckptScopeFingerprintHex(a), ckptScopeFingerprintHex(b));

    // Declaring fps shared merges the two points' checkpoint scope
    // (they fork from one warm snapshot) but must NOT merge their
    // run identity — both land separately in the results store.
    a.set("ckpt-share-keys", "fps");
    b.set("ckpt-share-keys", "fps");
    EXPECT_EQ(ckptScopeFingerprintHex(a), ckptScopeFingerprintHex(b));
    EXPECT_NE(sweepPointFingerprint(a), sweepPointFingerprint(b));
}

TEST(SweepFingerprint, EmptyConfigYieldsZeroAndEmptyHex)
{
    Config cfg;
    EXPECT_EQ(sweepPointFingerprint(cfg), 0u);
    EXPECT_EQ(sweepPointFingerprintHex(cfg), "");
    cfg.set("fps", "60");
    EXPECT_EQ(sweepPointFingerprintHex(cfg).size(), 16u);
}

// ------------------------------------------------------------------
// Resume computation and manifest.
// ------------------------------------------------------------------

TEST(SweepManifest, PendingPointsSkipsCommittedFingerprints)
{
    auto points = expandGrid(parseSweepSpec(
        "axis.config = BAS,DCB,DTB,HMC\n"));
    ASSERT_EQ(points.size(), 4u);

    // Simulate a sweep killed after two commits: only the committed
    // fingerprints are skipped on relaunch, order preserved.
    std::vector<std::string> done = {points[1].fingerprintHex,
                                     points[3].fingerprintHex};
    auto pending = pendingPoints(points, done);
    ASSERT_EQ(pending.size(), 2u);
    EXPECT_EQ(pending[0].fingerprintHex, points[0].fingerprintHex);
    EXPECT_EQ(pending[1].fingerprintHex, points[2].fingerprintHex);

    EXPECT_EQ(pendingPoints(points, {}).size(), 4u);
    done = {points[0].fingerprintHex, points[1].fingerprintHex,
            points[2].fingerprintHex, points[3].fingerprintHex};
    EXPECT_TRUE(pendingPoints(points, done).empty());
}

TEST(SweepManifest, WritesPointsAndIdentity)
{
    ManifestInfo info;
    info.scenario = "soc_point";
    info.specHash = "00ff";
    info.gitSha = "abc";
    info.replayDir = "traces";
    info.points = expandGrid(parseSweepSpec("axis.fps = 30,60\n"));

    std::string path = tempPath("manifest.json");
    writeManifest(path, info);
    std::string text = readFile(path);
    EXPECT_NE(text.find("\"scenario\": \"soc_point\""),
              std::string::npos);
    EXPECT_NE(text.find("\"spec_hash\": \"00ff\""),
              std::string::npos);
    EXPECT_NE(text.find(info.points[0].fingerprintHex),
              std::string::npos);
    EXPECT_NE(text.find("\"fps\": \"60\""), std::string::npos);
}

TEST(SweepOrchestrator, PointCommandCarriesDriveModeFlags)
{
    SweepSpec spec = parseSweepSpec(
        "scenario = soc_point\n"
        "restore = ckpt/warm\n"
        "replay = traces\n"
        "axis.fps = 30\n");
    auto points = expandGrid(spec);
    OrchestratorOptions opts;
    opts.benchBin = "bench/emerald_bench";
    opts.dbPath = "out/sweep.db";
    opts.gitSha = "abc";

    auto command = pointCommand(spec, points[0], opts);
    EXPECT_EQ(command,
              (std::vector<std::string>{
                  "bench/emerald_bench", "--run=soc_point",
                  "--fps=30", "--stats-out=sqlite:out/sweep.db",
                  "--git-sha=abc", "--restore=ckpt/warm",
                  "--replay-trace=traces"}));
}

// ------------------------------------------------------------------
// Stats sinks.
// ------------------------------------------------------------------

TEST(StatsSinkUri, DispatchesNullJsonAndSqlite)
{
    EXPECT_FALSE(makeStatsSink("")->live());
    EXPECT_FALSE(makeStatsSink("null")->live());
    EXPECT_TRUE(isSqliteUri("sqlite:runs.db"));
    EXPECT_FALSE(isSqliteUri("runs.db"));
    EXPECT_EQ(sqliteUriPath("sqlite:a/b.db"), "a/b.db");
}

/** A small stats tree exercising every Stat kind. */
struct TreeFixture
{
    // Unnamed root, like Simulation::_statsRoot: flattened paths are
    // then relative ("gpu.cycles"), prefixed by the sink's label.
    StatGroup root{""};
    StatGroup gpu{root, "gpu"};
    Scalar cycles{gpu, "cycles", "cycle count"};
    Distribution lat{gpu, "lat", "request latency"};

    TreeFixture()
    {
        cycles += 1234;
        lat.sample(4);
        lat.sample(8);
    }
};

TEST(StatsSinkJson, LegacyDocumentShapeIsPreserved)
{
    // The exact legacy BenchResults layout: two-space indent, one
    // result per line, 17-digit numbers, non-finite -> null, the sim
    // tree inlined under its label. check_replay.py/check_restore.py
    // parse these files; the framing below is load-bearing.
    TreeFixture fix;
    std::string path = tempPath("doc.json");
    {
        auto sink = makeStatsSink(path);
        ASSERT_TRUE(sink->live());
        RunInfo info;
        info.bench = "t";
        sink->beginRun(info);
        sink->recordScalar("gpu_ms", 0.1);
        sink->recordScalar("events", 7);
        sink->recordScalar("nan_ms",
                           std::numeric_limits<double>::quiet_NaN());
        sink->addStatsTree("cold", fix.root);
        sink->finishRun();
    }
    std::string text = readFile(path);

    std::ostringstream sim;
    fix.root.dumpJson(sim);
    std::string tree = sim.str();
    while (!tree.empty() && tree.back() == '\n')
        tree.pop_back();

    std::string expected =
        "{\n  \"bench\": \"t\",\n"
        "  \"results\": {\n"
        "    \"gpu_ms\": 0.10000000000000001,\n"
        "    \"events\": 7,\n"
        "    \"nan_ms\": null\n  },\n"
        "  \"sim\": {\n    \"cold\": " + tree + "\n  }\n}\n";
    EXPECT_EQ(text, expected);
}

TEST(StatsSinkJson, TreeModeMatchesDumpJsonByteForByte)
{
    TreeFixture fix;
    std::string path = tempPath("tree.json");
    {
        auto sink = makeTreeStatsSink(path);
        sink->beginRun(RunInfo{});
        sink->addStatsTree("sim", fix.root);
        sink->finishRun();
    }
    std::ostringstream expected;
    fix.root.dumpJson(expected);
    expected << "\n";
    EXPECT_EQ(readFile(path), expected.str());
}

// ------------------------------------------------------------------
// SQLite round trip (the orchestrator's journal).
// ------------------------------------------------------------------

#ifdef EMERALD_HAS_SQLITE

double
queryStat(const std::string &path, const std::string &name)
{
    sqlite3 *db = nullptr;
    EXPECT_EQ(sqlite3_open(path.c_str(), &db), SQLITE_OK);
    sqlite3_stmt *stmt = nullptr;
    EXPECT_EQ(sqlite3_prepare_v2(
                  db,
                  "SELECT value FROM stats JOIN runs USING(run_id) "
                  "WHERE name = ?",
                  -1, &stmt, nullptr),
              SQLITE_OK);
    sqlite3_bind_text(stmt, 1, name.c_str(), -1, SQLITE_TRANSIENT);
    double value = -1;
    if (sqlite3_step(stmt) == SQLITE_ROW)
        value = sqlite3_column_double(stmt, 0);
    sqlite3_finalize(stmt);
    sqlite3_close(db);
    return value;
}

TEST(StatsSinkSqlite, RoundTripsRunParamsAndStats)
{
    ASSERT_TRUE(sqliteSinkAvailable());
    ASSERT_TRUE(sweepDbAvailable());
    std::string path = tempPath("roundtrip.db");
    std::remove(path.c_str());

    Config cfg;
    cfg.set("config", "DCB");
    cfg.set("fps", "60");

    TreeFixture fix;
    {
        auto sink = makeStatsSink("sqlite:" + path);
        ASSERT_TRUE(sink->live());
        RunInfo info;
        info.bench = "soc_point";
        info.gitSha = "abc";
        info.fingerprint = sweepPointFingerprint(cfg);
        info.params = sweepPointParams(cfg);
        sink->beginRun(info);
        sink->recordScalar("gpu_ms", 2.5);
        sink->addStatsTree("cold", fix.root);
        sink->finishRun();
    }

    // The committed run is the resume journal entry.
    SweepDb db(path);
    auto done = db.doneFingerprints("soc_point", "abc");
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0], sweepPointFingerprintHex(cfg));
    EXPECT_TRUE(db.doneFingerprints("soc_point", "other").empty());
    EXPECT_TRUE(db.doneFingerprints("fig12", "abc").empty());

    EXPECT_DOUBLE_EQ(queryStat(path, "results.gpu_ms"), 2.5);
    EXPECT_DOUBLE_EQ(queryStat(path, "cold.gpu.cycles"), 1234.0);
    EXPECT_DOUBLE_EQ(queryStat(path, "cold.gpu.lat.count"), 2.0);

    // Re-running the same design point upserts: still one run.
    {
        auto sink = makeStatsSink("sqlite:" + path);
        RunInfo info;
        info.bench = "soc_point";
        info.gitSha = "abc";
        info.fingerprint = sweepPointFingerprint(cfg);
        info.params = sweepPointParams(cfg);
        sink->beginRun(info);
        sink->recordScalar("gpu_ms", 3.5);
        sink->finishRun();
    }
    EXPECT_EQ(db.doneFingerprints("soc_point", "abc").size(), 1u);
    EXPECT_DOUBLE_EQ(queryStat(path, "results.gpu_ms"), 3.5);

    EXPECT_EQ(db.getMeta("schema_version"), "1");
    db.setMeta("spec_hash", "feed");
    EXPECT_EQ(db.getMeta("spec_hash"), "feed");
    db.setMeta("spec_hash", "f00d");
    EXPECT_EQ(db.getMeta("spec_hash"), "f00d");
    EXPECT_EQ(db.getMeta("absent"), "");
}

// ------------------------------------------------------------------
// Failure journal + run status (the retry/quarantine ledger).
// ------------------------------------------------------------------

TEST(SweepDbFailures, RecordsCountsAndStatusRoundTrip)
{
    ASSERT_TRUE(sweepDbAvailable());
    std::string path = tempPath("failures.db");
    std::remove(path.c_str());
    SweepDb db(path);

    EXPECT_EQ(db.failureCount("soc_point", "fp1", "sha"), 0u);
    EXPECT_EQ(db.runStatus("soc_point", "fp1", "sha"), "");

    db.recordFailure("soc_point", "fp1", "sha", 0, "crash", 0, 42, 0,
                     "exit code 42");
    db.recordFailure("soc_point", "fp1", "sha", 1, "oom-killed", 9,
                     -1, 12345, "terminated by signal 9");
    // Corrupt-checkpoint records are informational: they must not
    // consume the point's retry budget.
    db.recordFailure("soc_point", "fp1", "sha", 1, "ckpt-corrupt", 0,
                     -1, 0, "crc-mismatch in rotation");

    EXPECT_EQ(db.failureCount("soc_point", "fp1", "sha"), 2u);
    EXPECT_EQ(db.failureCount("soc_point", "fp2", "sha"), 0u);
    EXPECT_EQ(db.failureCount("soc_point", "fp1", "other"), 0u);
    EXPECT_EQ(db.failureCount("fig12", "fp1", "sha"), 0u);

    // Status upserts work for points that never committed a run row
    // (that is how a quarantined point becomes visible at all).
    db.setRunStatus("soc_point", "fp1", "sha", "retrying");
    EXPECT_EQ(db.runStatus("soc_point", "fp1", "sha"), "retrying");
    db.setRunStatus("soc_point", "fp1", "sha", "quarantined");
    EXPECT_EQ(db.runStatus("soc_point", "fp1", "sha"), "quarantined");
    // A quarantined-but-never-committed point must not count as done.
    EXPECT_TRUE(db.doneFingerprints("soc_point", "sha").empty());
}

TEST(SweepDbFailures, ConcurrentWritersRetryThroughContention)
{
    ASSERT_TRUE(sweepDbAvailable());
    std::string path = tempPath("contention.db");
    std::remove(path.c_str());
    {
        SweepDb schema(path); // create the schema before forking
    }

    // A near-zero busy timeout forces every writer through the
    // jittered retry loop instead of SQLite's internal wait.
    ::setenv("EMERALD_SQLITE_BUSY_MS", "1", 1);
    constexpr int kWriters = 4;
    constexpr int kEach = 25;
    std::vector<pid_t> kids;
    for (int w = 0; w < kWriters; ++w) {
        pid_t pid = ::fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            SweepDb db(path);
            std::string fp = "fp" + std::to_string(w);
            for (int i = 0; i < kEach; ++i) {
                db.recordFailure("bench", fp, "sha", i, "crash", 0, 1,
                                 0, "contention probe");
            }
            db.setRunStatus("bench", fp, "sha", "retrying");
            ::_exit(0);
        }
        kids.push_back(pid);
    }
    for (pid_t pid : kids) {
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
            << "writer died under contention (status " << status
            << ")";
    }
    ::unsetenv("EMERALD_SQLITE_BUSY_MS");

    SweepDb db(path);
    for (int w = 0; w < kWriters; ++w) {
        std::string fp = "fp" + std::to_string(w);
        EXPECT_EQ(db.failureCount("bench", fp, "sha"),
                  static_cast<unsigned>(kEach));
        EXPECT_EQ(db.runStatus("bench", fp, "sha"), "retrying");
    }
}

#endif // EMERALD_HAS_SQLITE

} // namespace
