/**
 * @file
 * The application render loop: the stand-in for the paper's Android
 * app that "loads and displays a set of 3D models" (case study I).
 *
 * Each frame runs three phases, reproducing the inter-IP
 * dependencies the paper highlights (Fig. 10/14):
 *   1. CPU prep: every core executes a latency-bound memory quota
 *      (app + driver work). CPU traffic peaks here.
 *   2. GPU render: the frame is submitted; CPU cores drop to
 *      background traffic and block on the GPU fence.
 *   3. Vsync pacing: the next frame starts at the 30 FPS boundary
 *      (or immediately when the deadline was missed).
 *
 * While rendering, GPU progress (fragments shaded vs. the previous
 * frame's total) is reported to the DASH coordinator so deadline
 * urgency tracks reality.
 */

#ifndef EMERALD_SOC_APP_MODEL_HH
#define EMERALD_SOC_APP_MODEL_HH

#include <functional>
#include <vector>

#include "core/graphics_pipeline.hh"
#include "mem/dash_scheduler.hh"
#include "scenes/workloads.hh"
#include "soc/cpu_traffic.hh"

namespace emerald::mem
{
class TrafficTraceWriter;
} // namespace emerald::mem

namespace emerald::soc
{

struct AppParams
{
    /** GPU frame period (paper Table 3: 33 ms, 30 FPS). */
    Tick gpuFramePeriod = ticksFromMs(33.0);
    /** Prep-quota memory requests per core per frame. */
    std::uint64_t cpuPrepRequests = 2000;
    /** Frames to run (paper Table 6: 1 warm-up + 4 profiled). */
    unsigned frames = 5;
    /** DASH progress polling interval during rendering. */
    Tick progressPollPeriod = ticksFromUs(100.0);
};

class AppModel : public SimObject
{
  public:
    struct FrameRecord
    {
        Tick prepStart = 0;
        Tick renderStart = 0;
        Tick renderEnd = 0;
        core::FrameStats gpu;

        Tick gpuTime() const { return renderEnd - renderStart; }
        Tick totalTime() const { return renderEnd - prepStart; }
    };

    AppModel(Simulation &sim, const std::string &name,
             const AppParams &params, scenes::SceneRenderer &scene,
             std::vector<CpuCoreModel *> cores,
             mem::DashCoordinator *dash,
             std::function<void()> on_all_frames_done);

    void start();

    bool done() const { return _framesDone >= _params.frames; }
    const std::vector<FrameRecord> &frames() const { return _records; }

    /**
     * Bracket every frame's render phase in @p writer
     * (beginFrame/endFrame with the shaded-fragment work total), so
     * captured traffic carries the frame structure replay needs.
     * Null detaches.
     */
    void setTraceCapture(mem::TrafficTraceWriter *writer)
    {
        _traceWriter = writer;
    }

    void serialize(CheckpointOut &out) const override;
    void unserialize(CheckpointIn &in) override;
    /**
     * The render phase holds lambdas (frame-done fence, progress
     * listener) that cannot round-trip; prep and vsync pacing can.
     */
    bool checkpointSafe() const override { return !_rendering; }

    /** @{ Statistics. */
    Scalar statFrames;
    Distribution statGpuFrameTicks;
    Distribution statTotalFrameTicks;
    /** @} */

  private:
    void beginPrep();
    void corePrepDone();
    void beginRender();
    void renderDone(const core::FrameStats &stats);
    void pollProgress();

    AppParams _params;
    scenes::SceneRenderer &_scene;
    std::vector<CpuCoreModel *> _cores;
    mem::DashCoordinator *_dash;
    mem::TrafficTraceWriter *_traceWriter = nullptr;
    int _dashIp = -1;
    std::function<void()> _onDone;

    unsigned _framesDone = 0;
    unsigned _coresPending = 0;
    /** True from beginRender() until renderDone(). */
    bool _rendering = false;
    Tick _frameSlotStart = 0;
    double _fragEstimate = 0.0;
    std::uint64_t _progressReported = 0;
    FrameRecord _current;
    std::vector<FrameRecord> _records;

    EventFunction _startPrepEvent;
    EventFunction _pollEvent;
};

} // namespace emerald::soc

#endif // EMERALD_SOC_APP_MODEL_HH
