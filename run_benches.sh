#!/bin/sh
# Regenerates every paper table/figure (see EXPERIMENTS.md).
for b in build/bench/*; do $b; done 2>&1 | tee /root/repo/bench_output.txt
echo "ALL_BENCHES_DONE" >> /root/repo/bench_output.txt
