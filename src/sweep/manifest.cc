#include "sweep/manifest.hh"

#include <algorithm>
#include <fstream>

#include "sim/logging.hh"

namespace emerald
{
namespace sweep
{

void
writeManifest(const std::string &path, const ManifestInfo &info)
{
    std::ofstream os(path);
    fatal_if(!os, "cannot write sweep manifest '%s'", path.c_str());
    os << "{\n";
    os << "  \"scenario\": \"" << jsonEscape(info.scenario) << "\",\n";
    os << "  \"spec_hash\": \"" << jsonEscape(info.specHash)
       << "\",\n";
    os << "  \"git_sha\": \"" << jsonEscape(info.gitSha) << "\",\n";
    os << "  \"restore\": \"" << jsonEscape(info.restoreDir)
       << "\",\n";
    os << "  \"replay\": \"" << jsonEscape(info.replayDir) << "\",\n";
    os << "  \"points\": [\n";
    for (std::size_t i = 0; i < info.points.size(); ++i) {
        const SweepPoint &point = info.points[i];
        os << "    {\"fingerprint\": \""
           << jsonEscape(point.fingerprintHex) << "\", \"params\": {";
        for (std::size_t j = 0; j < point.params.size(); ++j) {
            if (j)
                os << ", ";
            os << "\"" << jsonEscape(point.params[j].first) << "\": \""
               << jsonEscape(point.params[j].second) << "\"";
        }
        os << "}}" << (i + 1 < info.points.size() ? "," : "") << "\n";
    }
    os << "  ]\n";
    os << "}\n";
    fatal_if(!os, "error writing sweep manifest '%s'", path.c_str());
}

std::vector<SweepPoint>
pendingPoints(const std::vector<SweepPoint> &all,
              const std::vector<std::string> &done)
{
    std::vector<SweepPoint> pending;
    for (const SweepPoint &point : all) {
        if (std::find(done.begin(), done.end(), point.fingerprintHex) ==
            done.end())
            pending.push_back(point);
    }
    return pending;
}

} // namespace sweep
} // namespace emerald
