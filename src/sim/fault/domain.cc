#include "sim/fault/domain.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace emerald::fault
{

namespace
{

/** Innermost-last stack of live domains (nested Simulations). */
std::vector<FaultDomain *> s_stack;

} // namespace

FaultDomain::FaultDomain()
{
    s_stack.push_back(this);
}

FaultDomain::~FaultDomain()
{
    panic_if(s_stack.empty() || s_stack.back() != this,
             "FaultDomain destroyed out of stack order");
    s_stack.pop_back();
}

FaultDomain *
FaultDomain::current()
{
    return s_stack.empty() ? nullptr : s_stack.back();
}

void
FaultDomain::registerList(RetryList *list)
{
    _lists.push_back(list);
}

void
FaultDomain::unregisterList(RetryList *list)
{
    auto it = std::find(_lists.begin(), _lists.end(), list);
    if (it != _lists.end())
        _lists.erase(it);
}

} // namespace emerald::fault
