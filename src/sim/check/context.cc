#include "sim/check/context.hh"

#include "sim/check/hooks.hh"
#include "sim/packet.hh"
#include "sim/packet_pool.hh"

namespace emerald::check
{

namespace
{

/** Context owning @p pkt, via its pool; null for heap packets. */
CheckContext *
contextOf(const MemPacket *pkt)
{
    return pkt->pool ? pkt->pool->checkContext() : nullptr;
}

} // namespace

CheckContext::CheckContext(EventQueue &eq, fault::FaultDomain *domain)
    : _lifecycle(eq), _retry(eq, domain)
{
}

CheckContext::~CheckContext() = default;

void
CheckContext::onTeardown(bool queue_drained)
{
    if (!queue_drained)
        return;
    _retry.verifyQuiescent();
    _lifecycle.verifyNoLeaks();
}

void
packetAlloc(PacketPool *pool, MemPacket *pkt)
{
    if (auto *ctx = pool->checkContext())
        ctx->lifecycle().onAlloc(pool, pkt);
}

void
packetFreeing(MemPacket *pkt)
{
    if (auto *ctx = contextOf(pkt))
        ctx->lifecycle().onFreeing(pkt);
}

void
packetPoolFree(PacketPool *pool, MemPacket *pkt)
{
    if (auto *ctx = pool->checkContext())
        ctx->lifecycle().onPoolFree(pool, pkt);
}

void
packetCompleting(MemPacket *pkt)
{
    if (auto *ctx = contextOf(pkt))
        ctx->lifecycle().onCompleting(pkt);
}

void
offerStarted(RetryList *list, MemPacket *pkt)
{
    if (auto *ctx = list->checkContext()) {
        ctx->lifecycle().onOfferStarted(pkt);
        ctx->retry().onOfferStarted(list);
    }
}

void
offerAccepted(RetryList *list, const MemPacket *pkt)
{
    if (auto *ctx = list->checkContext()) {
        ctx->lifecycle().onOfferAccepted(pkt);
        ctx->retry().onOfferAccepted(list);
    }
}

void
offerRejected(RetryList *list, const MemPacket *pkt, MemRequestor *req)
{
    (void)pkt;
    if (auto *ctx = list->checkContext())
        ctx->retry().onOfferRejected(list, req);
}

void
retryRegistered(RetryList *list, MemRequestor *req, bool deduped)
{
    if (auto *ctx = list->checkContext())
        ctx->retry().onRegistered(list, req, deduped);
}

void
retryWoken(RetryList *list, MemRequestor *req)
{
    if (auto *ctx = list->checkContext())
        ctx->retry().onWoken(list, req);
}

} // namespace emerald::check
