#include "sim/stats.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "sim/logging.hh"
#include "sim/serialize/serialize.hh"

namespace emerald
{

namespace
{

/** Render a double as a JSON number (non-finite values become null). */
std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    std::ostringstream os;
    os << std::setprecision(17) << v;
    return os.str();
}

/** Indentation helper for the pretty-printed stats tree. */
std::string
pad(int indent)
{
    return std::string(static_cast<std::size_t>(indent) * 2, ' ');
}

} // namespace

Stat::Stat(StatGroup &parent, std::string name, std::string desc)
    : _name(std::move(name)), _desc(std::move(desc))
{
    parent.addStat(this);
}

void
Scalar::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << " " << _value << " # " << desc() << "\n";
}

void
Scalar::dumpJson(std::ostream &os) const
{
    os << "{\"type\":\"scalar\",\"value\":" << jsonNumber(_value)
       << ",\"desc\":\"" << jsonEscape(desc()) << "\"}";
}

void
Scalar::flatten(const StatValueVisitor &emit) const
{
    emit("", _value);
}

void
Scalar::serialize(CheckpointOut &out, const std::string &key) const
{
    out.putF64(key, _value);
}

void
Scalar::unserialize(CheckpointIn &in, const std::string &key)
{
    _value = in.getF64(key);
}

void
Distribution::sample(double v, std::uint64_t count)
{
    if (_count == 0) {
        _min = v;
        _max = v;
    } else {
        _min = std::min(_min, v);
        _max = std::max(_max, v);
    }
    _count += count;
    _sum += v * static_cast<double>(count);
}

void
Distribution::reset()
{
    _count = 0;
    _sum = 0.0;
    _min = 0.0;
    _max = 0.0;
}

void
Distribution::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << ".count " << _count << " # " << desc()
       << " (samples)\n";
    os << prefix << name() << ".mean " << mean() << " # " << desc()
       << " (mean)\n";
    os << prefix << name() << ".min " << min() << " # " << desc()
       << " (min)\n";
    os << prefix << name() << ".max " << max() << " # " << desc()
       << " (max)\n";
    os << prefix << name() << ".total " << total() << " # " << desc()
       << " (total)\n";
}

void
Distribution::dumpJson(std::ostream &os) const
{
    os << "{\"type\":\"distribution\",\"count\":" << _count
       << ",\"total\":" << jsonNumber(total())
       << ",\"mean\":" << jsonNumber(mean())
       << ",\"min\":" << jsonNumber(min())
       << ",\"max\":" << jsonNumber(max())
       << ",\"desc\":\"" << jsonEscape(desc()) << "\"}";
}

void
Distribution::flatten(const StatValueVisitor &emit) const
{
    emit(".count", static_cast<double>(_count));
    emit(".mean", mean());
    emit(".min", min());
    emit(".max", max());
    emit(".total", total());
}

void
Distribution::serialize(CheckpointOut &out,
                        const std::string &key) const
{
    out.putU64(key + ".count", _count);
    out.putF64(key + ".sum", _sum);
    out.putF64(key + ".min", _min);
    out.putF64(key + ".max", _max);
}

void
Distribution::unserialize(CheckpointIn &in, const std::string &key)
{
    _count = in.getU64(key + ".count");
    _sum = in.getF64(key + ".sum");
    _min = in.getF64(key + ".min");
    _max = in.getF64(key + ".max");
}

TimeSeries::TimeSeries(StatGroup &parent, std::string name,
                       std::string desc, Tick bucket_width)
    : Stat(parent, std::move(name), std::move(desc)),
      _bucketWidth(bucket_width)
{
    panic_if(bucket_width == 0, "TimeSeries %s: zero bucket width",
             this->name().c_str());
}

void
TimeSeries::add(Tick when, double value)
{
    std::size_t idx = static_cast<std::size_t>(when / _bucketWidth);
    if (idx >= maxBuckets) {
        idx = maxBuckets - 1;
        ++_clampedSamples;
    }
    if (idx >= _buckets.size())
        _buckets.resize(idx + 1, 0.0);
    _buckets[idx] += value;
}

void
TimeSeries::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << ".nbuckets " << _buckets.size() << " # "
       << desc() << "\n";
    for (std::size_t i = 0; i < _buckets.size(); ++i) {
        os << prefix << name() << "[" << i << "] " << _buckets[i]
           << " # " << desc() << "\n";
    }
}

void
TimeSeries::dumpJson(std::ostream &os) const
{
    os << "{\"type\":\"timeseries\",\"bucket_width\":" << _bucketWidth
       << ",\"clamped\":" << _clampedSamples << ",\"buckets\":[";
    for (std::size_t i = 0; i < _buckets.size(); ++i) {
        if (i)
            os << ",";
        os << jsonNumber(_buckets[i]);
    }
    os << "],\"desc\":\"" << jsonEscape(desc()) << "\"}";
}

void
TimeSeries::flatten(const StatValueVisitor &emit) const
{
    double total = 0.0;
    for (double v : _buckets)
        total += v;
    emit(".nbuckets", static_cast<double>(_buckets.size()));
    emit(".total", total);
}

void
TimeSeries::serialize(CheckpointOut &out, const std::string &key) const
{
    out.putU64(key + ".bucket_width", _bucketWidth);
    out.putF64Vec(key + ".buckets", _buckets);
    out.putU64(key + ".clamped", _clampedSamples);
}

void
TimeSeries::unserialize(CheckpointIn &in, const std::string &key)
{
    Tick width = in.getU64(key + ".bucket_width");
    fatal_if(width != _bucketWidth,
             "checkpoint: TimeSeries '%s' was saved with bucket width "
             "%llu but this run uses %llu — stats buckets would not "
             "line up", key.c_str(), (unsigned long long)width,
             (unsigned long long)_bucketWidth);
    _buckets = in.getF64Vec(key + ".buckets");
    _clampedSamples = in.getU64(key + ".clamped");
}

StatGroup::StatGroup(std::string name)
    : _name(std::move(name))
{
}

StatGroup::StatGroup(StatGroup &parent, std::string name)
    : _parent(&parent), _name(std::move(name))
{
    parent.addChild(this);
}

StatGroup::~StatGroup()
{
    if (_parent)
        _parent->removeChild(this);
}

void
StatGroup::removeChild(StatGroup *child)
{
    auto it = std::find(_children.begin(), _children.end(), child);
    if (it != _children.end())
        _children.erase(it);
}

std::string
StatGroup::fullStatName() const
{
    if (!_parent)
        return _name;
    std::string parent_name = _parent->fullStatName();
    if (parent_name.empty())
        return _name;
    return parent_name + "." + _name;
}

void
StatGroup::dumpStats(std::ostream &os) const
{
    std::string prefix = fullStatName();
    if (!prefix.empty())
        prefix += ".";
    for (const Stat *stat : _stats)
        stat->dump(os, prefix);
    for (const StatGroup *child : _children)
        child->dumpStats(os);
}

void
StatGroup::dumpJson(std::ostream &os, int indent) const
{
    os << "{\n";
    os << pad(indent + 1) << "\"stats\": {";
    for (std::size_t i = 0; i < _stats.size(); ++i) {
        os << (i ? ",\n" : "\n") << pad(indent + 2) << "\""
           << jsonEscape(_stats[i]->name()) << "\": ";
        _stats[i]->dumpJson(os);
    }
    if (!_stats.empty())
        os << "\n" << pad(indent + 1);
    os << "},\n";
    os << pad(indent + 1) << "\"groups\": {";
    for (std::size_t i = 0; i < _children.size(); ++i) {
        os << (i ? ",\n" : "\n") << pad(indent + 2) << "\""
           << jsonEscape(_children[i]->statName()) << "\": ";
        _children[i]->dumpJson(os, indent + 2);
    }
    if (!_children.empty())
        os << "\n" << pad(indent + 1);
    os << "}\n" << pad(indent) << "}";
}

void
StatGroup::flattenStats(const StatValueVisitor &emit) const
{
    std::string prefix = fullStatName();
    if (!prefix.empty())
        prefix += ".";
    for (const Stat *stat : _stats) {
        const std::string base = prefix + stat->name();
        stat->flatten([&](const std::string &suffix, double value) {
            emit(base + suffix, value);
        });
    }
    for (const StatGroup *child : _children)
        child->flattenStats(emit);
}

void
StatGroup::resetStats()
{
    for (Stat *stat : _stats)
        stat->reset();
    for (StatGroup *child : _children)
        child->resetStats();
}

void
StatGroup::serializeStats(CheckpointOut &out) const
{
    std::string prefix = fullStatName();
    if (!prefix.empty())
        prefix += ".";
    for (const Stat *stat : _stats)
        stat->serialize(out, prefix + stat->name());
    for (const StatGroup *child : _children)
        child->serializeStats(out);
}

void
StatGroup::unserializeStats(CheckpointIn &in)
{
    std::string prefix = fullStatName();
    if (!prefix.empty())
        prefix += ".";
    for (Stat *stat : _stats)
        stat->unserialize(in, prefix + stat->name());
    for (StatGroup *child : _children)
        child->unserializeStats(in);
}

} // namespace emerald
