/**
 * @file
 * The Simulation context: the event queue, the stats root, and the
 * clock domains of one simulated system.
 */

#ifndef EMERALD_SIM_SIMULATION_HH
#define EMERALD_SIM_SIMULATION_HH

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "sim/clocked.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace emerald
{

/**
 * Owns the event queue and the root of the stats tree. Every
 * SimObject is constructed against a Simulation and registers its
 * stats under it.
 */
class Simulation
{
  public:
    Simulation();

    EventQueue &eventQueue() { return _eq; }
    Tick curTick() const { return _eq.curTick(); }

    /** Root of the stats tree. */
    StatGroup &statsRoot() { return _statsRoot; }

    /**
     * Create a clock domain owned by this simulation.
     * @param mhz frequency in MHz.
     */
    ClockDomain &createClockDomain(double mhz, const std::string &name);

    /** Run until the event queue drains or @p limit is reached. */
    std::uint64_t run(Tick limit = maxTick) { return _eq.runUntil(limit); }

    /** Dump all stats as "name value # desc" lines. */
    void dumpStats(std::ostream &os) { _statsRoot.dumpStats(os); }

    /** Reset all stats without disturbing component state. */
    void resetStats() { _statsRoot.resetStats(); }

  private:
    EventQueue _eq;
    StatGroup _statsRoot;
    std::vector<std::unique_ptr<ClockDomain>> _domains;
};

} // namespace emerald

#endif // EMERALD_SIM_SIMULATION_HH
