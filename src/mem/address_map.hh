/**
 * @file
 * DRAM address interleaving.
 *
 * The paper's case study I (Table 4) compares two layouts:
 *
 *  - Row:Rank:Bank:Column:Channel (baseline / HMC CPU channels):
 *    consecutive lines stripe across channels, then walk a row buffer
 *    ("page striped", maximizes row locality).
 *  - Row:Column:Rank:Bank:Channel (HMC IP channels): consecutive
 *    lines stripe across banks ("cache-line striped", maximizes bank
 *    parallelism at the cost of locality).
 *
 * Field names list the MSB first, so the last field occupies the bits
 * right above the line offset.
 */

#ifndef EMERALD_MEM_ADDRESS_MAP_HH
#define EMERALD_MEM_ADDRESS_MAP_HH

#include "sim/types.hh"

namespace emerald::mem
{

/** Physical organization of one DRAM subsystem. */
struct DramGeometry
{
    unsigned channels = 2;
    unsigned ranks = 1;
    unsigned banks = 8;
    /** Row buffer (page) size per bank, bytes. */
    unsigned rowBytes = 4096;
    /** Interleave granule; equals the system cache line size. */
    unsigned lineSize = 128;

    unsigned banksPerChannel() const { return ranks * banks; }
};

/** Supported interleaving schemes (MSB..LSB above the line offset). */
enum class AddrMapScheme
{
    /** Row:Rank:Bank:Column:Channel - page striped (locality). */
    RoRaBaCoCh,
    /** Row:Column:Rank:Bank:Channel - line striped (parallelism). */
    RoCoRaBaCh,
};

const char *addrMapSchemeName(AddrMapScheme scheme);

/** A fully decoded DRAM coordinate. */
struct DecodedAddr
{
    unsigned channel = 0;
    unsigned rank = 0;
    unsigned bank = 0;
    std::uint64_t row = 0;
    std::uint64_t column = 0;

    /** Flat bank index within a channel (rank-major). */
    unsigned
    flatBank(const DramGeometry &geom) const
    {
        return rank * geom.banks + bank;
    }

    bool
    operator==(const DecodedAddr &other) const = default;
};

/**
 * Bidirectional address translation for one scheme over one geometry.
 */
class AddressMap
{
  public:
    AddressMap(const DramGeometry &geom, AddrMapScheme scheme);

    DecodedAddr decode(Addr addr) const;
    Addr encode(const DecodedAddr &coord) const;

    const DramGeometry &geometry() const { return _geom; }
    AddrMapScheme scheme() const { return _scheme; }

  private:
    DramGeometry _geom;
    AddrMapScheme _scheme;

    unsigned _offsetBits;
    unsigned _channelBits;
    unsigned _columnBits;
    unsigned _bankBits;
    unsigned _rankBits;
};

} // namespace emerald::mem

#endif // EMERALD_MEM_ADDRESS_MAP_HH
