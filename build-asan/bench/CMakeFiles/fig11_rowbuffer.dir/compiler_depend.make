# Empty compiler generated dependencies file for fig11_rowbuffer.
# This may be replaced when dependencies are built.
