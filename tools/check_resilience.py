#!/usr/bin/env python3
"""Supervised-recovery gate: a run that crashed and recovered from a
checkpoint must be indistinguishable from one that never crashed.

Inputs are two --stats-json files (BenchResults format) plus the run
supervisor's summary:

  cold        the reference run, executed end to end undisturbed;
  recovered   the supervised run: its first attempt was killed
              mid-flight (or hung) and a retry resumed from the
              newest rotated checkpoint;
  supervisor.json
              written by the supervisor (docs/resilience.md); used to
              prove a recovery actually happened — a kill that landed
              after the run finished would pass the hash check
              without exercising recovery at all.

Checks:
  1. supervisor.json reports success with >= 2 attempts and at least
     one classified failure (pass --allow-cold-recovery to accept a
     recovery that restarted cold because no rotation existed yet);
  2. every `<case>.event_hash` matches the cold run bit for bit —
     the restored determinism verifier resumes the cold hash stream,
     so any divergence means recovery corrupted state.

Exit status: 0 when recovery is proven equivalent, 1 otherwise.

Usage: check_resilience.py cold.json recovered.json supervisor.json
"""

import argparse
import json
import sys

HASH_SUFFIX = ".event_hash"


def hash_keys(results):
    """Hash-carrying result keys: `<case>.event_hash` from the grid
    benches, or a bare `event_hash` from single-point scenarios."""
    return {k: v for k, v in results.items()
            if k == "event_hash" or k.endswith(HASH_SUFFIX)}


def case_of(key):
    return key[: -len(HASH_SUFFIX)] if key.endswith(HASH_SUFFIX) \
        else "(run)"


def load_json(path, what):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"check_resilience: cannot read {what} '{path}': "
                 f"{err}")


def load_results(path):
    doc = load_json(path, "stats-json")
    results = doc.get("results")
    if not isinstance(results, dict):
        sys.exit(f"check_resilience: '{path}' has no results object "
                 "— was the bench run with --stats-json?")
    return results


def check_supervisor(path, allow_cold):
    doc = load_json(path, "supervisor summary")
    failures = 0
    if not doc.get("succeeded"):
        print("FAIL supervisor: run did not succeed "
              f"(gave_up={doc.get('gave_up')})")
        failures += 1
    attempts = doc.get("attempts", 0)
    if attempts < 2:
        print(f"FAIL supervisor: {attempts} attempt(s) — no failure "
              "was injected, recovery was not exercised")
        failures += 1
    recs = doc.get("failures", [])
    if not recs:
        print("FAIL supervisor: no classified failures on record")
        failures += 1
    for rec in recs:
        cls = rec.get("class", "?")
        tick = rec.get("recovered_from_tick", 0)
        origin = f"checkpoint tick {tick}" if tick else "cold start"
        print(f"info supervisor: attempt {rec.get('attempt')} "
              f"failed as '{cls}' ({rec.get('detail', '')}); "
              f"next attempt from {origin}")
    warm = any(rec.get("recovered_from_tick", 0) > 0 for rec in recs)
    if not warm and not allow_cold:
        print("FAIL supervisor: every retry was a cold restart — "
              "no checkpoint recovery was exercised (pass "
              "--allow-cold-recovery if that is expected)")
        failures += 1
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("cold", help="stats-json of the cold run")
    parser.add_argument("recovered",
                        help="stats-json of the supervised run")
    parser.add_argument("supervisor",
                        help="supervisor.json of the supervised run")
    parser.add_argument("--allow-cold-recovery", action="store_true",
                        help="accept recovery without a checkpoint")
    args = parser.parse_args(argv)

    failures = check_supervisor(args.supervisor,
                                args.allow_cold_recovery)

    cold = load_results(args.cold)
    recovered = load_results(args.recovered)
    cold_hashes = hash_keys(cold)
    rec_hashes = hash_keys(recovered)
    if not cold_hashes:
        sys.exit("check_resilience: no *.event_hash results in the "
                 "cold run — pass --check-determinism to the bench")

    for key in sorted(cold_hashes):
        case = case_of(key)
        if key not in rec_hashes:
            print(f"FAIL {case}: missing from the recovered run")
            failures += 1
            continue
        ch, rh = cold_hashes[key], rec_hashes[key]
        if ch == 0 or rh == 0:
            print(f"FAIL {case}: hash is zero (determinism check was "
                  "off in one of the runs)")
            failures += 1
        elif ch != rh:
            print(f"FAIL {case}: cold hash {ch:.0f} != recovered "
                  f"hash {rh:.0f} — recovery diverged")
            failures += 1
        else:
            print(f"OK   {case}: hash {ch:.0f}")

    for key in sorted(set(rec_hashes) - set(cold_hashes)):
        print(f"FAIL {case_of(key)}: present only in the "
              "recovered run")
        failures += 1

    if failures:
        print(f"check_resilience: {failures} check(s) failed",
              file=sys.stderr)
        return 1
    print(f"check_resilience: recovery verified — {len(cold_hashes)} "
          "case(s) bit-identical to the cold run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
