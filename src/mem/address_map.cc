#include "mem/address_map.hh"

#include "sim/logging.hh"

namespace emerald::mem
{

const char *
addrMapSchemeName(AddrMapScheme scheme)
{
    switch (scheme) {
      case AddrMapScheme::RoRaBaCoCh: return "Ro:Ra:Ba:Co:Ch";
      case AddrMapScheme::RoCoRaBaCh: return "Ro:Co:Ra:Ba:Ch";
      default: return "unknown";
    }
}

AddressMap::AddressMap(const DramGeometry &geom, AddrMapScheme scheme)
    : _geom(geom), _scheme(scheme)
{
    panic_if(!isPowerOf2(geom.lineSize), "line size must be 2^n");
    panic_if(!isPowerOf2(geom.rowBytes), "row size must be 2^n");
    panic_if(!isPowerOf2(geom.channels), "channel count must be 2^n");
    panic_if(!isPowerOf2(geom.ranks), "rank count must be 2^n");
    panic_if(!isPowerOf2(geom.banks), "bank count must be 2^n");
    panic_if(geom.rowBytes < geom.lineSize, "row smaller than line");

    _offsetBits = log2i(geom.lineSize);
    _channelBits = log2i(geom.channels);
    _columnBits = log2i(geom.rowBytes / geom.lineSize);
    _bankBits = log2i(geom.banks);
    _rankBits = log2i(geom.ranks);
}

DecodedAddr
AddressMap::decode(Addr addr) const
{
    DecodedAddr out;
    Addr a = addr >> _offsetBits;

    auto take = [&a](unsigned bits) -> std::uint64_t {
        std::uint64_t field = a & ((std::uint64_t(1) << bits) - 1);
        a >>= bits;
        return field;
    };

    // Fields are consumed LSB-first, i.e. in reverse of the scheme
    // name (which lists the MSB first).
    switch (_scheme) {
      case AddrMapScheme::RoRaBaCoCh:
        out.channel = static_cast<unsigned>(take(_channelBits));
        out.column = take(_columnBits);
        out.bank = static_cast<unsigned>(take(_bankBits));
        out.rank = static_cast<unsigned>(take(_rankBits));
        out.row = a;
        break;
      case AddrMapScheme::RoCoRaBaCh:
        out.channel = static_cast<unsigned>(take(_channelBits));
        out.bank = static_cast<unsigned>(take(_bankBits));
        out.rank = static_cast<unsigned>(take(_rankBits));
        out.column = take(_columnBits);
        out.row = a;
        break;
    }
    return out;
}

Addr
AddressMap::encode(const DecodedAddr &coord) const
{
    Addr a = coord.row;

    auto put = [&a](std::uint64_t field, unsigned bits) {
        a = (a << bits) | (field & ((std::uint64_t(1) << bits) - 1));
    };

    switch (_scheme) {
      case AddrMapScheme::RoRaBaCoCh:
        put(coord.rank, _rankBits);
        put(coord.bank, _bankBits);
        put(coord.column, _columnBits);
        put(coord.channel, _channelBits);
        break;
      case AddrMapScheme::RoCoRaBaCh:
        put(coord.column, _columnBits);
        put(coord.rank, _rankBits);
        put(coord.bank, _bankBits);
        put(coord.channel, _channelBits);
        break;
    }
    return a << _offsetBits;
}

} // namespace emerald::mem
