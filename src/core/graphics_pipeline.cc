#include "core/graphics_pipeline.hh"

#include <algorithm>
#include <bit>

#include "core/clipper.hh"
#include "sim/logging.hh"
#include "sim/serialize/packet_serialize.hh"
#include "sim/serialize/registry.hh"
#include "sim/simulation.hh"

namespace emerald::core
{

using gpu::WarpTask;
using gpu::isa::ThreadContext;
using gpu::isa::warpSize;

GraphicsPipeline::GraphicsPipeline(Simulation &sim,
                                   const std::string &name,
                                   gpu::GpuTop &gpu, unsigned fb_width,
                                   unsigned fb_height,
                                   const GfxParams &params)
    : SimObject(sim, name), Clocked(gpu.coreClock(), name),
      statFrames(*this, "frames", "frames rendered"),
      statVertexWarps(*this, "vertex_warps", "vertex warps launched"),
      statPrimsIn(*this, "prims_in", "primitives assembled"),
      statPrimsCulled(*this, "prims_culled",
                      "primitives culled or clipped away"),
      statRasterTiles(*this, "raster_tiles",
                      "covered raster tiles produced"),
      statHizRejects(*this, "hiz_rejects", "raster tiles killed by Hi-Z"),
      statFragments(*this, "fragments", "fragments shaded"),
      statFragWarps(*this, "frag_warps", "fragment warps issued"),
      statTcFlushes(*this, "tc_flushes", "TC tile flushes"),
      _gpu(gpu), _params(params), _fbWidth(fb_width),
      _fbHeight(fb_height)
{
    registerProfileCounters();
    _mapping = std::make_unique<WtMapping>(fb_width, fb_height,
                                           gpu.numCores(), 1);
    _hiz = std::make_unique<HiZBuffer>(fb_width, fb_height);
    _clusters.resize(gpu.numClusters());
    for (auto &cluster : _clusters) {
        cluster.tc = std::make_unique<TcUnit>(
            params.tcEnginesPerCluster, params.tcFlushTimeoutCycles,
            params.tcReadyQueueDepth);
    }
    _tcBusy.assign(std::size_t(_mapping->tcCols()) * _mapping->tcRows(),
                   0);

    noc::LinkParams lp;
    lp.latency = ticksFromNs(4.0);
    lp.bytesPerSec = 32e9;
    lp.queueDepth = 64;
    _l2Link = std::make_unique<noc::Link>(sim, name + ".l2link", lp);
    _l2Link->setTarget(gpu.l2());

    registerCheckpointEvent(tickEvent());
    registerCheckpointRequestor(*this);
}

void
GraphicsPipeline::serialize(CheckpointOut &out) const
{
    // Only reached between frames (checkpointSafe()), so the draw
    // queue, clusters and warp counters are all empty; Hi-Z and the
    // framebuffer are cleared at the next beginFrame() anyway (the
    // displayed framebuffer is checkpointed separately by SocTop).
    panic_if(_frameOpen, "%s: serialize with a frame open",
             name().c_str());
    const CheckpointRegistry &reg = sim().checkpointRegistry();
    out.putU64("wt_size", _mapping->wtSize());
    out.putU64("pending_wt_size", _pendingWtSize);
    out.putU64("seq_counter", _seqCounter);
    out.putU64("next_core_rr", _nextCoreRR);
    out.putBool("l2_blocked", _l2Blocked);
    out.putU64("num_l2_traffic", _l2Traffic.size());
    for (std::size_t i = 0; i < _l2Traffic.size(); ++i)
        putPacket(out, strprintf("l2t%zu", i), *_l2Traffic[i], reg);

    out.putU64("last.cycles", _lastFrame.cycles);
    out.putTick("last.start_tick", _lastFrame.startTick);
    out.putTick("last.end_tick", _lastFrame.endTick);
    out.putU64("last.vertices", _lastFrame.vertices);
    out.putU64("last.prims_in", _lastFrame.primsIn);
    out.putU64("last.prims_culled", _lastFrame.primsCulled);
    out.putU64("last.raster_tiles", _lastFrame.rasterTiles);
    out.putU64("last.hiz_rejects", _lastFrame.hizRejects);
    out.putU64("last.fragments", _lastFrame.fragments);
    out.putU64("last.frag_warps", _lastFrame.fragWarps);
    out.putU64("last.wt_size", _lastFrame.wtSize);
}

void
GraphicsPipeline::unserialize(CheckpointIn &in)
{
    panic_if(_frameOpen, "%s: unserialize with a frame open",
             name().c_str());
    const CheckpointRegistry &reg = sim().checkpointRegistry();
    PacketPool &pool = sim().packetPool();

    _mapping->setWtSize(
        static_cast<unsigned>(in.getU64("wt_size")));
    _pendingWtSize =
        static_cast<unsigned>(in.getU64("pending_wt_size"));
    _seqCounter = in.getU64("seq_counter");
    _nextCoreRR = static_cast<unsigned>(in.getU64("next_core_rr"));
    _l2Blocked = in.getBool("l2_blocked");
    std::uint64_t num_l2 = in.getU64("num_l2_traffic");
    for (std::uint64_t i = 0; i < num_l2; ++i) {
        _l2Traffic.push_back(
            getPacket(in, strprintf("l2t%llu", (unsigned long long)i),
                      pool, reg));
    }

    _lastFrame.cycles = in.getU64("last.cycles");
    _lastFrame.startTick = in.getTick("last.start_tick");
    _lastFrame.endTick = in.getTick("last.end_tick");
    _lastFrame.vertices = in.getU64("last.vertices");
    _lastFrame.primsIn = in.getU64("last.prims_in");
    _lastFrame.primsCulled = in.getU64("last.prims_culled");
    _lastFrame.rasterTiles = in.getU64("last.raster_tiles");
    _lastFrame.hizRejects = in.getU64("last.hiz_rejects");
    _lastFrame.fragments = in.getU64("last.fragments");
    _lastFrame.fragWarps = in.getU64("last.frag_warps");
    _lastFrame.wtSize =
        static_cast<unsigned>(in.getU64("last.wt_size"));
}

void
GraphicsPipeline::beginFrame(Framebuffer *fb)
{
    panic_if(_frameOpen, "beginFrame with a frame already open");
    panic_if(fb->width() != _fbWidth || fb->height() != _fbHeight,
             "framebuffer size mismatch");
    _fb = fb;
    _fb->clear();
    if (_pendingWtSize != 0) {
        _mapping->setWtSize(_pendingWtSize);
        _pendingWtSize = 0;
    }
    _hiz->clear();
    _frameOpen = true;
    _endRequested = false;
    _frame = FrameStats{};
    _frame.startTick = curTick();
    _frame.wtSize = _mapping->wtSize();
    activate();
}

void
GraphicsPipeline::submitDraw(DrawCall draw)
{
    panic_if(!_frameOpen, "submitDraw without beginFrame");
    panic_if(!draw.vertexProgram || !draw.fragmentProgram,
             "draw call missing shader programs");
    panic_if(draw.numVaryings > maxVaryings, "too many varyings");
    _drawQueue.push_back(std::move(draw));
    activate();
}

void
GraphicsPipeline::endFrame(std::function<void(const FrameStats &)> cb)
{
    panic_if(!_frameOpen, "endFrame without beginFrame");
    _endRequested = true;
    _frameCallback = std::move(cb);
    activate();
}

void
GraphicsPipeline::startNextDraw()
{
    _activeDraw.emplace(std::move(_drawQueue.front()));
    _drawQueue.pop_front();
    _seqCounter = 0;
    _nextPrim = 0;
    for (auto &cluster : _clusters)
        cluster.pmrb.reset();
    _maskConsumeRemaining.clear();
    _fb->setDepthWrite(_activeDraw->state.depthTest &&
                       _activeDraw->state.depthWrite);
}

bool
GraphicsPipeline::drawFullyDrained() const
{
    if (!_activeDraw)
        return true;
    if (_nextPrim < _activeDraw->primitiveCount())
        return false;
    if (_vertexWarpsOutstanding > 0 || _vertexWarpsInFlight > 0)
        return false;
    for (const auto &cluster : _clusters) {
        if (!cluster.pmrb.empty() || !cluster.setupQueue.empty() ||
            cluster.raster || !cluster.fineQueue.empty() ||
            !cluster.tc->empty()) {
            return false;
        }
    }
    return _fragWarpsOutstanding == 0;
}

void
GraphicsPipeline::pushL2Read(Addr addr, AccessKind kind)
{
    _l2Traffic.push_back(sim().packetPool().alloc(
        addr & ~Addr(127), 128, false, TrafficClass::Gpu, kind,
        gpu::gpuRequestorId, nullptr));
}

void
GraphicsPipeline::pushL2Write(Addr addr, AccessKind kind)
{
    _l2Traffic.push_back(sim().packetPool().alloc(
        addr & ~Addr(127), 128, true, TrafficClass::Gpu, kind,
        gpu::gpuRequestorId, nullptr));
}

void
GraphicsPipeline::drainL2Traffic()
{
    if (_l2Blocked)
        return;
    while (!_l2Traffic.empty()) {
        if (!_l2Link->offer(_l2Traffic.front(), *this)) {
            _l2Blocked = true;
            return;
        }
        _l2Traffic.pop_front();
    }
}

void
GraphicsPipeline::retryRequest()
{
    _l2Blocked = false;
    drainL2Traffic();
    activate();
}

void
GraphicsPipeline::launchVertexWarp()
{
    DrawCall &draw = *_activeDraw;
    const bool strips =
        draw.primType == PrimitiveType::TriangleStrip;
    const unsigned total_prims = draw.primitiveCount();
    // Overlapped vertex warps (Section 3.3.3): strips share two
    // vertices between consecutive primitives, so a 32-vertex warp
    // carries 30 primitives; independent triangles carry 10.
    const unsigned cap = strips ? warpSize - 2 : warpSize / 3;

    unsigned base_prim = _nextPrim;
    unsigned prim_count = std::min(cap, total_prims - base_prim);
    unsigned first_vert = strips ? base_prim : base_prim * 3;
    unsigned vert_count =
        strips ? prim_count + 2 : prim_count * 3;
    std::uint64_t first_seq = _seqCounter;

    WarpTask task;
    task.type = gpu::WarpTaskType::Vertex;
    task.program = draw.vertexProgram;
    task.env.global = draw.memory;
    task.env.constants = draw.constants.data();
    task.env.numConstants =
        static_cast<unsigned>(draw.constants.size());
    task.env.textures = draw.textures;

    std::uint32_t mask = 0;
    for (unsigned lane = 0; lane < vert_count && lane < warpSize;
         ++lane) {
        mask |= 1u << lane;
        ThreadContext &t = task.threads[lane];
        unsigned vid = first_vert + lane;
        t.vertexId = vid;
        // Functional attribute fetch.
        unsigned n = std::min(draw.floatsPerVertex,
                              gpu::isa::maxAttrs);
        if (draw.memory) {
            draw.memory->read(draw.vertexBufferAddr +
                                  Addr(vid) * draw.strideBytes(),
                              t.a, n * 4);
        }
        // Timing: vertex fetch traffic (64 B granules over the
        // vertex's extent).
        Addr vaddr = draw.vertexBufferAddr +
                     Addr(vid) * draw.strideBytes();
        for (unsigned off = 0; off < draw.strideBytes(); off += 64) {
            task.initFetch.push_back(
                {vaddr + off, 4, false});
        }
    }
    task.activeMask = mask;
    task.initFetchKind = AccessKind::Vertex;

    task.onComplete = [this, first_seq, base_prim, prim_count,
                       first_vert, vert_count](WarpTask &,
                                               ThreadContext *threads) {
        assembleVertexWarp(first_seq, base_prim, prim_count, first_vert,
                           vert_count, threads);
    };

    // Round-robin core placement.
    bool placed = false;
    for (unsigned attempt = 0; attempt < _gpu.numCores(); ++attempt) {
        unsigned idx = (_nextCoreRR + attempt) % _gpu.numCores();
        // Copy the task only on success: tryAddTask moves it.
        if (_gpu.core(idx).tryAddTask(WarpTask(task))) {
            _nextCoreRR = (idx + 1) % _gpu.numCores();
            placed = true;
            break;
        }
    }
    if (!placed)
        return; // All cores busy; retry next cycle.

    _nextPrim += prim_count;
    _seqCounter += prim_count;
    ++_vertexWarpsInFlight;
    ++_vertexWarpsOutstanding;
    ++statVertexWarps;
    _frame.vertices += vert_count;
}

void
GraphicsPipeline::assembleVertexWarp(std::uint64_t first_seq,
                                     unsigned base_prim,
                                     unsigned prim_count, unsigned,
                                     unsigned vert_count,
                                     isa_threads_t threads)
{
    DrawCall &draw = *_activeDraw;
    const bool strips =
        draw.primType == PrimitiveType::TriangleStrip;
    const unsigned nv = draw.numVaryings;

    auto prims = std::make_shared<std::vector<PrimRecord>>(prim_count);

    for (unsigned p = 0; p < prim_count; ++p) {
        PrimRecord &rec = (*prims)[p];
        rec.seq = first_seq + p;

        unsigned lanes[3];
        if (strips) {
            unsigned global_prim = base_prim + p;
            if (global_prim & 1) {
                lanes[0] = p + 1;
                lanes[1] = p;
                lanes[2] = p + 2;
            } else {
                lanes[0] = p;
                lanes[1] = p + 1;
                lanes[2] = p + 2;
            }
        } else {
            lanes[0] = p * 3;
            lanes[1] = p * 3 + 1;
            lanes[2] = p * 3 + 2;
        }

        ClipVertex cv[3];
        bool lane_ok = true;
        for (int i = 0; i < 3; ++i) {
            if (lanes[i] >= vert_count) {
                lane_ok = false;
                break;
            }
            const ThreadContext &t = threads[lanes[i]];
            cv[i].pos = {t.o[0], t.o[1], t.o[2], t.o[3]};
            for (unsigned a = 0; a < nv && a < maxVaryings; ++a)
                cv[i].attrs[a] = t.o[4 + a];
        }
        ++statPrimsIn;
        ++_frame.primsIn;
        if (!lane_ok) {
            ++statPrimsCulled;
            ++_frame.primsCulled;
            continue;
        }

        ClipResult clipped;
        if (!clipTriangle(cv, clipped)) {
            ++statPrimsCulled;
            ++_frame.primsCulled;
            continue;
        }

        for (unsigned ct = 0; ct < clipped.count; ++ct) {
            ScreenVertex sv[3];
            for (int i = 0; i < 3; ++i) {
                const ClipVertex &v = clipped.tris[ct][i];
                sv[i] = viewportTransform(v.pos, v.attrs.data(), nv,
                                          _fbWidth, _fbHeight);
            }
            SetupPrim setup;
            if (!setupPrimitive(sv, _fbWidth, _fbHeight,
                                draw.state.cullBackface, setup)) {
                continue;
            }
            if (rec.tris.empty()) {
                rec.tcX0 = setup.tileX0 /
                           static_cast<int>(tcTileRasterTiles);
                rec.tcY0 = setup.tileY0 /
                           static_cast<int>(tcTileRasterTiles);
                rec.tcX1 = setup.tileX1 /
                           static_cast<int>(tcTileRasterTiles);
                rec.tcY1 = setup.tileY1 /
                           static_cast<int>(tcTileRasterTiles);
            } else {
                rec.tcX0 = std::min(
                    rec.tcX0,
                    setup.tileX0 / static_cast<int>(tcTileRasterTiles));
                rec.tcY0 = std::min(
                    rec.tcY0,
                    setup.tileY0 / static_cast<int>(tcTileRasterTiles));
                rec.tcX1 = std::max(
                    rec.tcX1,
                    setup.tileX1 / static_cast<int>(tcTileRasterTiles));
                rec.tcY1 = std::max(
                    rec.tcY1,
                    setup.tileY1 / static_cast<int>(tcTileRasterTiles));
            }
            rec.tris.push_back(setup);
        }
        if (rec.tris.empty()) {
            ++statPrimsCulled;
            ++_frame.primsCulled;
        }
    }

    // OVB write traffic: shaded vertex outputs spill to L2.
    Addr ovb_first = _params.ovbBase +
                     (first_seq % 4096) * _params.ovbVertexBytes * 3;
    for (unsigned off = 0;
         off < vert_count * _params.ovbVertexBytes; off += 128) {
        pushL2Write(ovb_first + off, AccessKind::Vertex);
    }

    // VPO: cluster masks and PMRB delivery (paper Fig. 6).
    std::vector<std::uint32_t> masks = computeClusterMasks(
        *prims, *_mapping, _gpu.coresPerCluster(), _gpu.numClusters());

    for (unsigned c = 0; c < _clusters.size(); ++c) {
        PrimitiveMask mask;
        mask.firstSeq = first_seq;
        mask.count = prim_count;
        mask.bits = masks[c];
        mask.prims = prims;
        _clusters[c].pmrb.insert(std::move(mask));
    }
    _maskConsumeRemaining[first_seq] =
        static_cast<unsigned>(_clusters.size());

    panic_if(_vertexWarpsOutstanding == 0,
             "vertex warp over-completion");
    --_vertexWarpsOutstanding;
    activate();
}

void
GraphicsPipeline::tickVertexDistribution()
{
    if (!_activeDraw)
        return;
    if (_nextPrim >= _activeDraw->primitiveCount())
        return;
    if (_vertexWarpsInFlight >= _params.maxVertexWarpsInFlight)
        return;
    launchVertexWarp();
}

void
GraphicsPipeline::tickClusterPmrb(ClusterState &cluster)
{
    // Out-of-order release is safe only for depth-tested,
    // non-blended draws (paper Section 3.3.6).
    bool ooo = _params.oooPrimitives && _activeDraw &&
               _activeDraw->state.depthTest &&
               !_activeDraw->state.blend;
    while (ooo ? cluster.pmrb.anyReady() : cluster.pmrb.headReady()) {
        if (cluster.setupQueue.size() >= _params.setupQueueDepth)
            return;

        PrimitiveMask mask =
            ooo ? cluster.pmrb.popAnyReady() : cluster.pmrb.popHead();
        std::uint32_t bits = mask.bits;
        for (unsigned slot = 0; slot < mask.count; ++slot) {
            if (!(bits & (1u << slot)))
                continue;
            const PrimRecord &rec = (*mask.prims)[slot];
            if (rec.culled())
                continue;
            cluster.setupQueue.push_back({mask.prims, &rec});
        }

        auto it = _maskConsumeRemaining.find(mask.firstSeq);
        panic_if(it == _maskConsumeRemaining.end(),
                 "unknown mask consume record");
        if (--it->second == 0) {
            _maskConsumeRemaining.erase(it);
            panic_if(_vertexWarpsInFlight == 0,
                     "vertex warp credit underflow");
            --_vertexWarpsInFlight;
        }
    }
}

void
GraphicsPipeline::tickClusterSetup(ClusterState &cluster)
{
    if (cluster.raster || cluster.setupQueue.empty())
        return;
    SetupItem item = std::move(cluster.setupQueue.front());
    cluster.setupQueue.pop_front();

    // Setup fetches the three shaded vertices from L2 (paper: the
    // setup stage uses primitive IDs to fetch vertex data from L2).
    Addr base = _params.ovbBase +
                (item.prim->seq % 4096) * _params.ovbVertexBytes * 3;
    for (unsigned v = 0; v < 3; ++v)
        pushL2Read(base + v * _params.ovbVertexBytes,
                   AccessKind::Vertex);

    RasterJob job;
    job.holder = std::move(item.holder);
    job.prim = item.prim;
    job.tri = 0;
    job.tx = item.prim->tris.empty() ? 0 : item.prim->tris[0].tileX0;
    job.ty = item.prim->tris.empty() ? 0 : item.prim->tris[0].tileY0;
    cluster.raster.emplace(std::move(job));
}

void
GraphicsPipeline::tickClusterRaster(unsigned cluster_idx,
                                    ClusterState &cluster)
{
    if (!cluster.raster)
        return;
    RasterJob &job = *cluster.raster;
    const DrawCall &draw = *_activeDraw;

    unsigned covered_budget = _params.coveredTilesPerCycle;
    unsigned skip_budget = _params.coarseSkipPerCycle;

    while (covered_budget > 0 && skip_budget > 0) {
        if (job.tri >= job.prim->tris.size()) {
            cluster.raster.reset();
            return;
        }
        const SetupPrim &prim = job.prim->tris[job.tri];

        if (job.ty > prim.tileY1) {
            // Triangle finished; move to the next clipped triangle.
            ++job.tri;
            if (job.tri < job.prim->tris.size()) {
                job.tx = job.prim->tris[job.tri].tileX0;
                job.ty = job.prim->tris[job.tri].tileY0;
            }
            continue;
        }

        int tx = job.tx;
        int ty = job.ty;
        // Advance the scan position.
        if (++job.tx > prim.tileX1) {
            job.tx = prim.tileX0;
            ++job.ty;
        }

        // Coarse raster: only tiles owned by this cluster.
        unsigned tc_x = static_cast<unsigned>(tx) / tcTileRasterTiles;
        unsigned tc_y = static_cast<unsigned>(ty) / tcTileRasterTiles;
        unsigned owner_core = _mapping->coreOf(tc_x, tc_y);
        if (owner_core / _gpu.coresPerCluster() != cluster_idx) {
            --skip_budget;
            continue;
        }

        FragmentTile tile;
        if (!rasterizeTile(prim, tx, ty, draw.numVaryings, _fbWidth,
                           _fbHeight, tile)) {
            --skip_budget;
            continue;
        }

        // Hi-Z (paper Fig. 3 stage J).
        if (_params.hizEnabled && draw.state.depthTest) {
            float min_z = 1.0f;
            float max_z = 0.0f;
            for (unsigned p = 0; p < rasterTilePixels; ++p) {
                if (tile.coverMask & (1u << p)) {
                    min_z = std::min(min_z, tile.z[p]);
                    max_z = std::max(max_z, tile.z[p]);
                }
            }
            if (!_hiz->test(tx, ty, min_z)) {
                _hiz->noteRejected();
                ++statHizRejects;
                ++_frame.hizRejects;
                --covered_budget;
                continue;
            }
            if (tile.fullyCovered() && draw.state.depthWrite &&
                !draw.fragmentProgram->usesDiscard) {
                _hiz->update(tx, ty, max_z);
            }
        }

        if (cluster.fineQueue.size() >= _params.fineQueueDepth) {
            // Back-pressure: rewind the scan position and stall.
            job.tx = tx;
            job.ty = ty;
            return;
        }
        cluster.fineQueue.push_back(tile);
        ++statRasterTiles;
        ++_frame.rasterTiles;
        --covered_budget;
    }
}

void
GraphicsPipeline::issueInstance(TcInstance &&instance)
{
    const DrawCall &draw = *_activeDraw;
    unsigned tc_idx = _mapping->tcIndex(instance.tcX, instance.tcY);
    unsigned core_idx = _mapping->coreOf(instance.tcX, instance.tcY);

    // Gather fragments.
    struct Frag
    {
        int x, y;
        float z;
        const std::array<float, maxVaryings> *attrs;
    };
    std::vector<Frag> frags;
    frags.reserve(tcTilePx * tcTilePx);
    for (const auto &tile : instance.tiles) {
        if (!tile)
            continue;
        int base_x = tile->tileX * static_cast<int>(rasterTilePx);
        int base_y = tile->tileY * static_cast<int>(rasterTilePx);
        for (unsigned p = 0; p < rasterTilePixels; ++p) {
            if (!(tile->coverMask & (1u << p)))
                continue;
            int x = base_x + static_cast<int>(p % rasterTilePx);
            int y = base_y + static_cast<int>(p / rasterTilePx);
            frags.push_back({x, y, tile->z[p], &tile->attrs[p]});
        }
    }
    panic_if(frags.empty(), "empty TC instance issued");

    unsigned warps = static_cast<unsigned>(
        divCeil(frags.size(), warpSize));
    auto remaining = std::make_shared<unsigned>(warps);

    for (unsigned w = 0; w < warps; ++w) {
        WarpTask task;
        task.type = gpu::WarpTaskType::Fragment;
        task.program = draw.fragmentProgram;
        task.env.textures = draw.textures;
        task.env.rop = _fb;
        task.env.global = draw.memory;
        task.env.constants = draw.constants.data();
        task.env.numConstants =
            static_cast<unsigned>(draw.constants.size());

        std::uint32_t mask = 0;
        for (unsigned lane = 0; lane < warpSize; ++lane) {
            std::size_t f = std::size_t(w) * warpSize + lane;
            if (f >= frags.size())
                break;
            mask |= 1u << lane;
            ThreadContext &t = task.threads[lane];
            t.fragX = frags[f].x;
            t.fragY = frags[f].y;
            t.fragZ = frags[f].z;
            unsigned nv = draw.numVaryings;
            for (unsigned a = 0; a < nv && a < maxVaryings; ++a)
                t.a[a] = (*frags[f].attrs)[a];
        }
        task.activeMask = mask;
        task.tag = tc_idx;

        task.onComplete = [this, remaining, tc_idx](
                              WarpTask &, ThreadContext *) {
            panic_if(_fragWarpsOutstanding == 0,
                     "fragment warp over-completion");
            --_fragWarpsOutstanding;
            if (--*remaining == 0)
                _tcBusy[tc_idx] = 0;
            activate();
        };

        bool ok = _gpu.core(core_idx).tryAddTask(std::move(task));
        panic_if(!ok, "core rejected fragment warp after space check");
    }

    _tcBusy[tc_idx] = 1;
    _fragWarpsOutstanding += warps;
    statFragWarps += warps;
    _frame.fragWarps += warps;
    statFragments += static_cast<double>(frags.size());
    _frame.fragments += frags.size();
    if (_progressListener)
        _progressListener(_frame.fragments);
}

void
GraphicsPipeline::tickClusterTc(unsigned, ClusterState &cluster)
{
    // Stage raster tiles into TC engines (up to 2 per cycle).
    for (int n = 0; n < 2 && !cluster.fineQueue.empty(); ++n) {
        if (!cluster.tc->tryAdd(cluster.fineQueue.front(), curCycle()))
            break;
        cluster.fineQueue.pop_front();
    }
    cluster.tc->tickTimeouts(curCycle());

    // Issue at most one coalesced instance per cycle, gated by the
    // per-position interlock and the target core's queue space.
    if (!cluster.tc->hasReady())
        return;
    const TcInstance &head = cluster.tc->peekReady();
    unsigned tc_idx = _mapping->tcIndex(head.tcX, head.tcY);
    if (_tcBusy[tc_idx])
        return;
    unsigned core_idx = _mapping->coreOf(head.tcX, head.tcY);
    unsigned warps = static_cast<unsigned>(
        divCeil(head.fragmentCount(), warpSize));
    gpu::SimtCore &core = _gpu.core(core_idx);
    if (core.queuedTasks() + warps > core.params().taskQueueDepth)
        return;
    TcInstance instance = cluster.tc->popReady();
    ++statTcFlushes;
    issueInstance(std::move(instance));
}

void
GraphicsPipeline::tickCluster(unsigned cluster_idx)
{
    ClusterState &cluster = _clusters[cluster_idx];
    tickClusterTc(cluster_idx, cluster);
    tickClusterRaster(cluster_idx, cluster);
    tickClusterSetup(cluster);
    tickClusterPmrb(cluster);

    // Draw drain: flush partially staged TC tiles once upstream is
    // dry for this cluster.
    if (_activeDraw && _nextPrim >= _activeDraw->primitiveCount() &&
        _vertexWarpsOutstanding == 0 && cluster.pmrb.empty() &&
        cluster.setupQueue.empty() && !cluster.raster &&
        cluster.fineQueue.empty()) {
        cluster.tc->drain();
    }
}

void
GraphicsPipeline::maybeFinishFrame()
{
    if (_activeDraw && drawFullyDrained())
        _activeDraw.reset();
    if (!_activeDraw && !_drawQueue.empty())
        startNextDraw();

    if (_endRequested && !_activeDraw && _drawQueue.empty() &&
        _fragWarpsOutstanding == 0) {
        _frameOpen = false;
        _endRequested = false;
        _frame.endTick = curTick();
        _frame.cycles = (_frame.endTick - _frame.startTick) /
                        clockDomain().period();
        ++statFrames;
        _lastFrame = _frame;
        if (_frameCallback) {
            auto cb = std::move(_frameCallback);
            _frameCallback = nullptr;
            cb(_lastFrame);
        }
    }
}

bool
GraphicsPipeline::tick()
{
    if (!_frameOpen)
        return false;

    for (unsigned c = 0; c < _clusters.size(); ++c)
        tickCluster(c);
    tickVertexDistribution();
    drainL2Traffic();
    maybeFinishFrame();

    if (!_frameOpen)
        return false;

    // Sleep while the only possible progress is a warp completion
    // (vertex assembly or fragment retirement), both of which call
    // activate(). Any live fixed-function work keeps us ticking.
    bool ooo = _params.oooPrimitives && _activeDraw &&
               _activeDraw->state.depthTest &&
               !_activeDraw->state.blend;
    for (const ClusterState &cluster : _clusters) {
        if (!cluster.setupQueue.empty() || cluster.raster ||
            !cluster.fineQueue.empty() || !cluster.tc->empty() ||
            (ooo ? cluster.pmrb.anyReady()
                 : cluster.pmrb.headReady())) {
            return true;
        }
    }
    if (!_l2Traffic.empty() && !_l2Blocked)
        return true;
    if (_activeDraw && _nextPrim < _activeDraw->primitiveCount() &&
        _vertexWarpsInFlight < _params.maxVertexWarpsInFlight) {
        return true;
    }
    if (!_activeDraw && !_drawQueue.empty())
        return true;
    return false;
}

} // namespace emerald::core
