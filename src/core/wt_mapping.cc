#include "core/wt_mapping.hh"

#include "sim/logging.hh"

namespace emerald::core
{

WtMapping::WtMapping(unsigned fb_width, unsigned fb_height,
                     unsigned num_cores, unsigned wt_size)
    : _tcCols(static_cast<unsigned>(divCeil(fb_width, tcTilePx))),
      _tcRows(static_cast<unsigned>(divCeil(fb_height, tcTilePx))),
      _numCores(num_cores), _wtSize(wt_size)
{
    panic_if(num_cores == 0, "WT mapping needs at least one core");
    panic_if(wt_size == 0, "WT size must be positive");
}

void
WtMapping::setWtSize(unsigned wt_size)
{
    panic_if(wt_size == 0, "WT size must be positive");
    _wtSize = wt_size;
}

unsigned
WtMapping::coreOf(unsigned tc_x, unsigned tc_y) const
{
    unsigned wt_x = tc_x / _wtSize;
    unsigned wt_y = tc_y / _wtSize;
    unsigned wt_cols = static_cast<unsigned>(divCeil(_tcCols, _wtSize));
    return (wt_y * wt_cols + wt_x) % _numCores;
}

} // namespace emerald::core
