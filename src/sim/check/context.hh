/**
 * @file
 * Per-Simulation container for the correctness checkers.
 *
 * The kernel hooks in hooks.hh have no ambient state to dispatch
 * through: each hook resolves its CheckContext from its arguments —
 * a PacketPool carries the pointer directly (set at construction by
 * the Simulation), a RetryList resolves it through the
 * fault::FaultDomain it registered with, and a MemPacket reaches it
 * via its owning pool. Pools and lists constructed outside a
 * Simulation (bare tests) resolve null and the hooks no-op, so two
 * Simulations can coexist — even on different threads — without
 * their checkers observing each other's traffic.
 */

#ifndef EMERALD_SIM_CHECK_CONTEXT_HH
#define EMERALD_SIM_CHECK_CONTEXT_HH

#include "sim/check/packet_lifecycle.hh"
#include "sim/check/retry_protocol.hh"

namespace emerald
{

class EventQueue;

namespace fault
{
class FaultDomain;
} // namespace fault

namespace check
{

/** Owns one Simulation's checkers and routes kernel hooks to them. */
class CheckContext
{
  public:
    /**
     * @param domain the owning Simulation's fault domain; the retry
     *        checker consults its injector so deliberate faults are
     *        not reported as protocol bugs. Null for bare test
     *        contexts with no fault injection.
     */
    explicit CheckContext(EventQueue &eq,
                          fault::FaultDomain *domain = nullptr);
    ~CheckContext();

    CheckContext(const CheckContext &) = delete;
    CheckContext &operator=(const CheckContext &) = delete;

    PacketLifecycleChecker &lifecycle() { return _lifecycle; }
    RetryProtocolChecker &retry() { return _retry; }

    /**
     * End-of-simulation checks, called from ~Simulation. Leak and
     * quiescence verification only make sense when the event queue
     * drained: benches that stop at a tick limit legally tear down
     * with traffic still in flight, so @p queue_drained gates them.
     */
    void onTeardown(bool queue_drained);

  private:
    PacketLifecycleChecker _lifecycle;
    RetryProtocolChecker _retry;
};

} // namespace check
} // namespace emerald

#endif // EMERALD_SIM_CHECK_CONTEXT_HH
