file(REMOVE_RECURSE
  "libemerald_scenes.a"
)
