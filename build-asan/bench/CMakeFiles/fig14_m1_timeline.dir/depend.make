# Empty dependencies file for fig14_m1_timeline.
# This may be replaced when dependencies are built.
