/**
 * @file
 * The shader library: Emerald-ISA sources for the standard workload
 * shaders (the TGSItoPTX outputs of the paper's flow, hand-written
 * here) plus GPGPU kernels used by the unified-model examples/tests.
 *
 * Conventions (see core/draw_call.hh):
 *   vertex inputs   a[0..2] position, a[3..5] normal, a[6..7] uv
 *   vertex consts   c[0..15] view-projection (column major),
 *                   c[16..18] light direction, c[19] ambient,
 *                   c[20] alpha
 *   vertex outputs  o[0..3] clip position, o[4..6] lit color,
 *                   o[7..8] uv
 *   fragment inputs a[0..2] lit color, a[3..4] uv
 *   fragment output o[0..3] RGBA (the ShaderBuilder adds ROP)
 */

#ifndef EMERALD_SCENES_SHADERS_HH
#define EMERALD_SCENES_SHADERS_HH

#include <string>

namespace emerald::scenes
{

/** Number of varyings the standard shaders interpolate. */
constexpr unsigned standardVaryings = 5;

/** Standard Gouraud-lit vertex shader. */
const std::string &vertexShaderSource();

/** Textured fragment shader (modulates lit color). */
const std::string &fragmentTexturedSource();

/** Textured fragment shader with constant alpha (translucent). */
const std::string &fragmentTranslucentSource();

/** Flat-color fragment shader (no texture). */
const std::string &fragmentFlatSource();

/** Heavier fragment shader: two texture taps + specular-ish math. */
const std::string &fragmentHeavySource();

/** GPGPU: c = a + b over float arrays (params in c[0..2]). */
const std::string &kernelVecAddSource();

/** GPGPU: block-wise sum reduction using shared memory. */
const std::string &kernelReduceSource();

/** GPGPU: SAXPY with a divergent guard (tests SIMT divergence). */
const std::string &kernelSaxpyBranchySource();

} // namespace emerald::scenes

#endif // EMERALD_SCENES_SHADERS_HH
