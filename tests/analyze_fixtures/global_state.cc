// Fixture for tools/emerald_analyze.py: global-mutable-state.
//
// Each `// EXPECT: <rule>` annotation marks a line the analyzer must
// flag with exactly that rule; every other line must stay clean.
// tools/check_fixtures.py compares both directions, with the textual
// engine everywhere and the AST engine wherever clang is installed.

namespace fix
{

int g_counter = 0;          // EXPECT: global-mutable-state
static bool g_flag = false; // EXPECT: global-mutable-state

const int k_limit = 8;
constexpr int k_size = 4;

int
nextId()
{
    static int next = 0; // EXPECT: global-mutable-state
    return ++next;
}

struct Counter {
    static int instances; // EXPECT: global-mutable-state
    int value = 0;
};

int
bump(Counter &c)
{
    int local = 0; // locals are per-frame: clean
    local += c.value;
    return local;
}

} // namespace fix
