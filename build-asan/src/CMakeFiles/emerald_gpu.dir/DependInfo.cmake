
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/coalescer.cc" "src/CMakeFiles/emerald_gpu.dir/gpu/coalescer.cc.o" "gcc" "src/CMakeFiles/emerald_gpu.dir/gpu/coalescer.cc.o.d"
  "/root/repo/src/gpu/gpu_top.cc" "src/CMakeFiles/emerald_gpu.dir/gpu/gpu_top.cc.o" "gcc" "src/CMakeFiles/emerald_gpu.dir/gpu/gpu_top.cc.o.d"
  "/root/repo/src/gpu/isa/assembler.cc" "src/CMakeFiles/emerald_gpu.dir/gpu/isa/assembler.cc.o" "gcc" "src/CMakeFiles/emerald_gpu.dir/gpu/isa/assembler.cc.o.d"
  "/root/repo/src/gpu/isa/cfg.cc" "src/CMakeFiles/emerald_gpu.dir/gpu/isa/cfg.cc.o" "gcc" "src/CMakeFiles/emerald_gpu.dir/gpu/isa/cfg.cc.o.d"
  "/root/repo/src/gpu/isa/executor.cc" "src/CMakeFiles/emerald_gpu.dir/gpu/isa/executor.cc.o" "gcc" "src/CMakeFiles/emerald_gpu.dir/gpu/isa/executor.cc.o.d"
  "/root/repo/src/gpu/isa/instruction.cc" "src/CMakeFiles/emerald_gpu.dir/gpu/isa/instruction.cc.o" "gcc" "src/CMakeFiles/emerald_gpu.dir/gpu/isa/instruction.cc.o.d"
  "/root/repo/src/gpu/kernel.cc" "src/CMakeFiles/emerald_gpu.dir/gpu/kernel.cc.o" "gcc" "src/CMakeFiles/emerald_gpu.dir/gpu/kernel.cc.o.d"
  "/root/repo/src/gpu/scoreboard.cc" "src/CMakeFiles/emerald_gpu.dir/gpu/scoreboard.cc.o" "gcc" "src/CMakeFiles/emerald_gpu.dir/gpu/scoreboard.cc.o.d"
  "/root/repo/src/gpu/simt_core.cc" "src/CMakeFiles/emerald_gpu.dir/gpu/simt_core.cc.o" "gcc" "src/CMakeFiles/emerald_gpu.dir/gpu/simt_core.cc.o.d"
  "/root/repo/src/gpu/simt_stack.cc" "src/CMakeFiles/emerald_gpu.dir/gpu/simt_stack.cc.o" "gcc" "src/CMakeFiles/emerald_gpu.dir/gpu/simt_stack.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/emerald_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/emerald_mem.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/emerald_cache.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/emerald_noc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
