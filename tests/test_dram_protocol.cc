#include <gtest/gtest.h>

#include "mem/frfcfs_scheduler.hh"
#include "mem/memory_system.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"

using namespace emerald;
using namespace emerald::mem;

namespace
{

/** Records completion times per request. */
struct TimedCatcher : public MemClient
{
    Simulation *sim = nullptr;
    std::vector<Tick> done;

    void
    memResponse(MemPacket *pkt) override
    {
        done.push_back(sim->curTick());
        delete pkt;
    }
};

MemorySystemParams
oneChannel()
{
    MemorySystemParams mp;
    mp.geom.channels = 1;
    mp.timing = lpddr3Timing(1333.0, 32, 128);
    return mp;
}

} // namespace

/**
 * Protocol legality properties: whatever order the scheduler picks,
 * per-bank and bus timing lower bounds must hold.
 */
TEST(DramProtocol, ConflictPairRespectsPrechargeActivate)
{
    Simulation sim;
    TimedCatcher catcher;
    catcher.sim = &sim;
    FrfcfsScheduler sched;
    MemorySystem mem(sim, "mem", oneChannel(), sched);
    const DramTiming &t = mem.params().timing;

    // Two conflicting rows in the same bank, back to back.
    auto *a = new MemPacket(0, 128, false, TrafficClass::Gpu,
                            AccessKind::GlobalData, 0, &catcher);
    auto *b = new MemPacket(1 << 20, 128, false, TrafficClass::Gpu,
                            AccessKind::GlobalData, 0, &catcher);
    ASSERT_TRUE(mem.tryAccept(a));
    ASSERT_TRUE(mem.tryAccept(b));
    sim.run();
    ASSERT_EQ(catcher.done.size(), 2u);

    // First: tRCD + tCL + tBURST. Second must additionally wait for
    // at least tRAS (activate age) + tRP + tRCD before its CAS.
    Tick first = catcher.done[0];
    Tick second = catcher.done[1];
    EXPECT_EQ(first, t.tRCD + t.tCL + t.tBURST);
    EXPECT_GE(second - first, t.tRP + t.tRCD);
    EXPECT_GE(second, t.tRAS + t.tRP + t.tRCD + t.tCL + t.tBURST);
}

TEST(DramProtocol, BusSerializesBackToBackHits)
{
    Simulation sim;
    TimedCatcher catcher;
    catcher.sim = &sim;
    FrfcfsScheduler sched;
    MemorySystem mem(sim, "mem", oneChannel(), sched);
    const DramTiming &t = mem.params().timing;

    // Four hits in the same open row: completions spaced >= tBURST.
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(mem.tryAccept(
            new MemPacket(Addr(i) * 128, 128, false, TrafficClass::Gpu,
                          AccessKind::GlobalData, 0, &catcher)));
    }
    sim.run();
    ASSERT_EQ(catcher.done.size(), 4u);
    for (std::size_t i = 1; i < 4; ++i)
        EXPECT_GE(catcher.done[i] - catcher.done[i - 1], t.tBURST);
}

TEST(DramProtocol, RandomTrafficLowerBounds)
{
    // Property: under random traffic, no read completes faster than
    // the row-hit minimum (tCL + tBURST), and per-channel throughput
    // never exceeds the bus peak.
    Simulation sim;
    TimedCatcher catcher;
    catcher.sim = &sim;
    FrfcfsScheduler sched;
    MemorySystem mem(sim, "mem", oneChannel(), sched);
    const DramTiming &t = mem.params().timing;
    Random rng(4242);

    unsigned sent = 0;
    Tick start = sim.curTick();
    for (int burst = 0; burst < 30; ++burst) {
        for (int i = 0; i < 6; ++i) {
            Tick issue = sim.curTick();
            auto *pkt = new MemPacket(
                (rng.next() & 0x0ffffff80ULL), 128, false,
                TrafficClass::Gpu, AccessKind::GlobalData, 0,
                &catcher, issue);
            if (mem.tryAccept(pkt))
                ++sent;
            else
                delete pkt;
        }
        std::size_t before = catcher.done.size();
        sim.run();
        // Each request took at least the hit minimum.
        for (std::size_t i = before; i < catcher.done.size(); ++i)
            EXPECT_GE(catcher.done[i], t.tCL + t.tBURST);
    }
    ASSERT_EQ(catcher.done.size(), sent);

    // Aggregate bandwidth bounded by the bus peak.
    double seconds = secondsFromTicks(sim.curTick() - start);
    double bytes = static_cast<double>(sent) * 128.0;
    EXPECT_LE(bytes / seconds, t.peakBytesPerSec * 1.01);
}

TEST(DramProtocol, WritesDelayFollowingPrechargeViaRecovery)
{
    Simulation sim;
    TimedCatcher catcher;
    catcher.sim = &sim;
    FrfcfsScheduler sched;
    MemorySystem mem(sim, "mem", oneChannel(), sched);
    const DramTiming &t = mem.params().timing;

    // Write to row A, then read row B in the same bank: the write
    // recovery (tWR) delays the precharge, adding latency over the
    // read-read conflict case.
    auto *w = new MemPacket(0, 128, true, TrafficClass::Gpu,
                            AccessKind::GlobalData, 0, &catcher);
    ASSERT_TRUE(mem.tryAccept(w));
    sim.run();
    Tick write_done = catcher.done.back();

    auto *r = new MemPacket(1 << 20, 128, false, TrafficClass::Gpu,
                            AccessKind::GlobalData, 0, &catcher);
    ASSERT_TRUE(mem.tryAccept(r));
    sim.run();
    Tick read_done = catcher.done.back();
    EXPECT_GE(read_done - write_done, t.tRP + t.tRCD);
}
