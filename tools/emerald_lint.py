#!/usr/bin/env python3
"""Repo lint gate for Emerald (see docs/static_analysis.md).

AST-free, regex-based checks for repo-specific rules that neither the
compiler nor clang-tidy knows about:

  packet-alloc    MemPackets on the hot path come from PacketPool;
                  raw `new MemPacket` / `delete pkt` in src/ bypasses
                  the pool, its stats, and the lifecycle checkers.
  randomness      All randomness flows through sim/random.hh so runs
                  are reproducible from one seed; rand()/mt19937
                  elsewhere silently breaks determinism.
  raw-print       src/ reports through logging.hh and stats.hh, not
                  printf/std::cout, so output stays machine-parseable.
  stat-dup        Two stats registered with the same name on the same
                  parent silently shadow each other in dumps.
  fatal-exit      src/ terminates through panic()/fatal() (logging.hh)
                  so every abort flushes stats and prints a diagnosed
                  report; a raw abort()/exit() skips both. Only the
                  logging sink itself, the sim/check checkers, and the
                  watchdog report path may touch the process directly.
  serializable-coverage
                  Every SimObject subclass overrides
                  serialize(CheckpointOut&) so checkpoints capture its
                  state, unless allowlisted as stateless
                  (docs/checkpointing.md).

The offer-checked and sched-factory rules moved to
tools/emerald_analyze.py, which checks them AST-grounded when clang is
available; their regex implementations stay here (importable) as that
tool's textual fallback, but no longer run as part of this gate.

Run from anywhere: paths are resolved relative to the repo root
(parent of this file's directory) unless --root is given. Exit status
is the number of violations (0 = clean), capped at 99.
"""

import argparse
import re
import sys
from pathlib import Path

SRC_SUFFIXES = {".cc", ".hh", ".cpp", ".hpp", ".h"}


def repo_root() -> Path:
    return Path(__file__).resolve().parent.parent


class Violation:
    def __init__(self, rule, path, line, text):
        self.rule = rule
        self.path = path
        self.line = line
        self.text = text

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.text}"


def strip_comments(lines):
    """Yield (lineno, text) with // and /* */ comments blanked out.

    String literals are not tracked; rule patterns are specific enough
    that code-like text inside strings does not occur in this repo.
    """
    in_block = False
    for lineno, raw in enumerate(lines, start=1):
        line = raw
        out = []
        i = 0
        while i < len(line):
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = len(line)
                else:
                    i = end + 2
                    in_block = False
            else:
                slash = line.find("//", i)
                block = line.find("/*", i)
                if slash >= 0 and (block < 0 or slash < block):
                    out.append(line[i:slash])
                    i = len(line)
                elif block >= 0:
                    out.append(line[i:block])
                    i = block + 2
                    in_block = True
                else:
                    out.append(line[i:])
                    i = len(line)
        yield lineno, "".join(out)


# rule: packet-alloc ---------------------------------------------------

RAW_NEW_RE = re.compile(r"\bnew\s+MemPacket\b")
RAW_DELETE_RE = re.compile(r"\bdelete\s+(\w*pkt\w*|\w*packet\w*)\b")

# freePacket()'s heap fallback is the one legal delete; the pool's
# placement-new recycling does not match RAW_NEW_RE (operand differs).
PACKET_ALLOC_ALLOWLIST = {"src/sim/packet.cc"}


def check_packet_alloc(rel, clean_lines, out):
    if rel in PACKET_ALLOC_ALLOWLIST:
        return
    for lineno, line in clean_lines:
        if RAW_NEW_RE.search(line):
            out.append(Violation(
                "packet-alloc", rel, lineno,
                "raw `new MemPacket` — allocate from "
                "Simulation::packetPool() so the pool stats and "
                "lifecycle checks see it"))
        if RAW_DELETE_RE.search(line):
            out.append(Violation(
                "packet-alloc", rel, lineno,
                "raw `delete` of a packet — release with freePacket() "
                "or completePacket()"))


# rule: randomness -----------------------------------------------------

RANDOM_RE = re.compile(
    r"(?<![\w:])(s?rand)\s*\(|std::mt19937|std::random_device")

RANDOM_ALLOWLIST = {"src/sim/random.hh"}


def check_randomness(rel, clean_lines, out):
    if rel in RANDOM_ALLOWLIST:
        return
    for lineno, line in clean_lines:
        if RANDOM_RE.search(line):
            out.append(Violation(
                "randomness", rel, lineno,
                "raw randomness — draw from sim/random.hh so runs "
                "replay from one seed"))


# rule: raw-print ------------------------------------------------------

# Bare printf only: strprintf/fprintf/snprintf have \w before "printf"
# and fprintf-to-a-FILE* (framebuffer dumps) is legitimate.
PRINT_RE = re.compile(r"(?<![\w:])printf\s*\(|std::cout\b|std::cerr\b")

PRINT_ALLOWLIST = {"src/sim/logging.hh", "src/sim/logging.cc",
                   "src/sim/stats.hh", "src/sim/stats.cc"}


def check_raw_print(rel, clean_lines, out):
    if rel in PRINT_ALLOWLIST:
        return
    for lineno, line in clean_lines:
        if PRINT_RE.search(line):
            out.append(Violation(
                "raw-print", rel, lineno,
                "direct console output in src/ — use logging.hh "
                "(diagnostics) or stats (results)"))


# rule: offer-checked --------------------------------------------------

OFFER_CALL_RE = re.compile(r"[.>]\s*offer\s*\(")
# A used result: condition, assignment, return, negation, boolean op.
OFFER_USED_RE = re.compile(
    r"(if\s*\(|while\s*\(|return\b|[=!&|]\s*|\bbool\b[^;]*=\s*)[^;]*"
    r"[.>]\s*offer\s*\(")


def check_offer_checked(rel, clean_lines, out):
    lines = dict(clean_lines)
    for lineno, line in lines.items():
        if not OFFER_CALL_RE.search(line):
            continue
        # Join the statement across a couple of lines so wrapped
        # conditions are seen whole.
        start = lineno
        while start - 1 in lines and \
                re.search(r"(if|while|return|[=!&|(])\s*$",
                          lines[start - 1].rstrip()):
            start -= 1
        stmt = " ".join(lines[n] for n in range(start, lineno + 1))
        if OFFER_USED_RE.search(stmt):
            continue
        out.append(Violation(
            "offer-checked", rel, lineno,
            "offer() result ignored — a rejected offer leaves the "
            "packet with the caller (docs/memory_protocol.md)"))


# rule: stat-dup -------------------------------------------------------

# Stat construction: Type name(parent, "stat_name", ... or the member
# initializer form statX(parent, "stat_name", ...
STAT_REG_RE = re.compile(
    r"\b\w+\s*\(\s*([*\w][\w.\->]*)\s*,\s*\"([\w.]+)\"\s*,")


def check_stat_dup(rel, clean_lines, out):
    seen = {}
    for lineno, line in clean_lines:
        for match in STAT_REG_RE.finditer(line):
            parent, name = match.group(1), match.group(2)
            key = (parent, name)
            if key in seen:
                out.append(Violation(
                    "stat-dup", rel, lineno,
                    f'stat "{name}" registered twice on {parent} '
                    f"(first at line {seen[key]}) — the dumps would "
                    "carry two entries with one name"))
            else:
                seen[key] = lineno


# rule: fatal-exit -----------------------------------------------------

ABORT_RE = re.compile(
    r"(?<![\w:.])(?:std::)?(abort|_Exit|quick_exit|exit)\s*\(")

FATAL_EXIT_ALLOWLIST = {"src/sim/logging.cc", "src/sim/fault/watchdog.cc"}
FATAL_EXIT_ALLOW_PREFIXES = ("src/sim/check/",)


def check_fatal_exit(rel, clean_lines, out):
    if rel in FATAL_EXIT_ALLOWLIST:
        return
    if any(rel.startswith(p) for p in FATAL_EXIT_ALLOW_PREFIXES):
        return
    for lineno, line in clean_lines:
        match = ABORT_RE.search(line)
        if match:
            out.append(Violation(
                "fatal-exit", rel, lineno,
                f"direct {match.group(1)}() — terminate via panic() / "
                "fatal() (logging.hh) so stats flush and the hang "
                "report prints"))


# rule: sched-factory --------------------------------------------------

# Concrete scheduling-policy classes. Holding a pointer/reference to
# one is fine (rigs own the factory's bundle); *constructing* one —
# new, make_unique, or a by-value member/local — outside the factory
# files bypasses the registry that --warp-sched/--mem-sched select
# from.
SCHED_CLASSES = (r"(?:FrfcfsScheduler|DashScheduler|DashCoordinator|"
                 r"LrrScheduler|GtoScheduler|WaspScheduler)")
SCHED_CONSTRUCT_RE = re.compile(
    r"(?:\bnew\s+|make_unique<\s*)(?:\w+::)*" + SCHED_CLASSES + r"\b")
SCHED_VALUE_DECL_RE = re.compile(
    r"\b(?:\w+::)*" + SCHED_CLASSES + r"\s+\w+\s*[;({=]")

SCHED_FACTORY_ALLOWLIST = {"src/mem/sched_factory.cc",
                           "src/gpu/warp_sched.cc"}


def check_sched_factory(rel, clean_lines, out):
    if rel in SCHED_FACTORY_ALLOWLIST:
        return
    for lineno, line in clean_lines:
        if SCHED_CONSTRUCT_RE.search(line) or \
                SCHED_VALUE_DECL_RE.search(line):
            out.append(Violation(
                "sched-factory", rel, lineno,
                "direct construction of a scheduling policy — go "
                "through createWarpScheduler()/createMemScheduler() "
                "so --warp-sched/--mem-sched stay authoritative "
                "(docs/scheduling.md)"))


# rule: serializable-coverage ------------------------------------------

SIMOBJECT_CLASS_RE = re.compile(
    r"\bclass\s+(\w+)\s*(?:final\s*)?:[^;{]*\bpublic\s+SimObject\b")
SERIALIZE_DECL_RE = re.compile(r"\bserialize\s*\(\s*CheckpointOut\b")
CLASS_DECL_RE = re.compile(r"\bclass\s+\w+\s*(?:final\s*)?[:{]")

# Stateless SimObjects: pure routers/aggregates whose children carry
# every bit of live state, so the inherited no-op serialize() is
# correct. Adding a class here asserts it holds no pending events,
# queues, counters, or RNG state of its own.
SERIALIZABLE_ALLOWLIST = {"MemorySystem", "Crossbar", "GpuTop"}


def check_serializable_coverage(rel, clean_lines, out):
    """Every SimObject subclass must override serialize(CheckpointOut&)
    (checkpoints silently lose its state otherwise) or be allowlisted
    as stateless."""
    if not rel.endswith(".hh"):
        return
    lines = list(clean_lines)
    text = "\n".join(line for _, line in lines)
    for match in SIMOBJECT_CLASS_RE.finditer(text):
        cls = match.group(1)
        if cls in SERIALIZABLE_ALLOWLIST:
            continue
        # Scope the serialize() search to this class: from its
        # declaration to the next class declaration (or EOF).
        tail = text[match.end():]
        nxt = CLASS_DECL_RE.search(tail)
        body = tail[:nxt.start()] if nxt else tail
        if SERIALIZE_DECL_RE.search(body):
            continue
        lineno = text.count("\n", 0, match.start()) + 1
        lineno = lines[lineno - 1][0] if lineno <= len(lines) else 0
        out.append(Violation(
            "serializable-coverage", rel, lineno,
            f"SimObject subclass {cls} does not override "
            "serialize(CheckpointOut&) — its state silently vanishes "
            "from checkpoints. Implement it (docs/checkpointing.md) "
            "or allowlist the class as stateless in emerald_lint.py"))


# driver ---------------------------------------------------------------

def lint_file(path: Path, rel: str, out):
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as err:
        out.append(Violation("io", rel, 0, f"unreadable: {err}"))
        return
    clean = list(strip_comments(text.splitlines()))
    check_packet_alloc(rel, clean, out)
    check_randomness(rel, clean, out)
    check_raw_print(rel, clean, out)
    check_stat_dup(rel, clean, out)
    check_fatal_exit(rel, clean, out)
    check_serializable_coverage(rel, clean, out)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path, default=repo_root(),
                        help="repository root (default: inferred)")
    parser.add_argument("paths", nargs="*",
                        help="files to lint (default: all of src/)")
    args = parser.parse_args(argv)

    root = args.root.resolve()
    if args.paths:
        files = [Path(p).resolve() for p in args.paths]
    else:
        files = sorted(p for p in (root / "src").rglob("*")
                       if p.suffix in SRC_SUFFIXES)

    violations = []
    for path in files:
        try:
            rel = str(path.relative_to(root))
        except ValueError:
            rel = str(path)
        lint_file(path, rel, violations)

    for violation in violations:
        print(violation)
    if violations:
        print(f"emerald_lint: {len(violations)} violation(s)",
              file=sys.stderr)
    else:
        print(f"emerald_lint: {len(files)} file(s) clean")
    return min(len(violations), 99)


if __name__ == "__main__":
    sys.exit(main())
