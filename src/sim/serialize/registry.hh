/**
 * @file
 * Name <-> pointer tables used to checkpoint cross-object references.
 *
 * A checkpoint cannot store pointers, so anything referenced across
 * objects is written as a name and resolved against this registry on
 * restore: pending Events (re-scheduled by name), MemClients (packet
 * response targets) and MemRequestors (parked RetryList waiters).
 * Components register in their constructors — the same construction
 * that rebuilds the topology on restore rebuilds the registry, so the
 * names resolve to the equivalent objects in the new process.
 */

#ifndef EMERALD_SIM_SERIALIZE_REGISTRY_HH
#define EMERALD_SIM_SERIALIZE_REGISTRY_HH

#include <map>
#include <string>

#include "sim/logging.hh"

namespace emerald
{

class Event;
class MemClient;
class MemRequestor;

/** Checkpoint name tables owned by the Simulation. */
class CheckpointRegistry
{
  public:
    /** @{ Pending-event table (EventQueue re-scheduling by name). */
    void
    registerEvent(const std::string &name, Event &ev)
    {
        auto [it, inserted] = _events.emplace(name, &ev);
        panic_if(!inserted,
                 "checkpoint registry: duplicate event name '%s'",
                 name.c_str());
        _eventNames.emplace(&ev, name);
    }

    void
    unregisterEvent(Event &ev)
    {
        auto it = _eventNames.find(&ev);
        if (it == _eventNames.end())
            return;
        _events.erase(it->second);
        _eventNames.erase(it);
    }

    Event *
    findEvent(const std::string &name) const
    {
        auto it = _events.find(name);
        return it == _events.end() ? nullptr : it->second;
    }

    /** Registered name of @p ev, or "" when unregistered. */
    std::string
    eventName(const Event &ev) const
    {
        auto it = _eventNames.find(&ev);
        return it == _eventNames.end() ? std::string() : it->second;
    }
    /** @} */

    /** @{ Response-target table (MemPacket::client by name). */
    void
    registerClient(const std::string &name, MemClient &client)
    {
        auto [it, inserted] = _clients.emplace(name, &client);
        panic_if(!inserted,
                 "checkpoint registry: duplicate client name '%s'",
                 name.c_str());
        _clientNames.emplace(&client, name);
    }

    void
    unregisterClient(MemClient &client)
    {
        auto it = _clientNames.find(&client);
        if (it == _clientNames.end())
            return;
        _clients.erase(it->second);
        _clientNames.erase(it);
    }

    MemClient &
    client(const std::string &name) const
    {
        auto it = _clients.find(name);
        fatal_if(it == _clients.end(),
                 "checkpoint restore: no MemClient named '%s' in this "
                 "topology", name.c_str());
        return *it->second;
    }

    /** Registered name of @p client (fatal when unregistered). */
    const std::string &
    clientName(const MemClient &client) const
    {
        auto it = _clientNames.find(&client);
        fatal_if(it == _clientNames.end(),
                 "checkpoint: in-flight packet references an "
                 "unregistered MemClient — every response target must "
                 "call registerCheckpointClient()");
        return it->second;
    }
    /** @} */

    /** @{ Retry-waiter table (RetryList parking by name). */
    void
    registerRequestor(const std::string &name, MemRequestor &req)
    {
        auto [it, inserted] = _requestors.emplace(name, &req);
        panic_if(!inserted,
                 "checkpoint registry: duplicate requestor name '%s'",
                 name.c_str());
        _requestorNames.emplace(&req, name);
    }

    void
    unregisterRequestor(MemRequestor &req)
    {
        auto it = _requestorNames.find(&req);
        if (it == _requestorNames.end())
            return;
        _requestors.erase(it->second);
        _requestorNames.erase(it);
    }

    MemRequestor &
    requestor(const std::string &name) const
    {
        auto it = _requestors.find(name);
        fatal_if(it == _requestors.end(),
                 "checkpoint restore: no MemRequestor named '%s' in "
                 "this topology", name.c_str());
        return *it->second;
    }

    /** Registered name of @p req (fatal when unregistered). */
    const std::string &
    requestorName(const MemRequestor &req) const
    {
        auto it = _requestorNames.find(&req);
        fatal_if(it == _requestorNames.end(),
                 "checkpoint: parked retry waiter is an unregistered "
                 "MemRequestor — every requestor that can block must "
                 "call registerCheckpointRequestor()");
        return it->second;
    }
    /** @} */

  private:
    std::map<std::string, Event *> _events;
    std::map<const Event *, std::string> _eventNames;
    std::map<std::string, MemClient *> _clients;
    std::map<const MemClient *, std::string> _clientNames;
    std::map<std::string, MemRequestor *> _requestors;
    std::map<const MemRequestor *, std::string> _requestorNames;
};

} // namespace emerald

#endif // EMERALD_SIM_SERIALIZE_REGISTRY_HH
