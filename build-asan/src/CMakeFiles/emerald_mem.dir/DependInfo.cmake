
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/address_map.cc" "src/CMakeFiles/emerald_mem.dir/mem/address_map.cc.o" "gcc" "src/CMakeFiles/emerald_mem.dir/mem/address_map.cc.o.d"
  "/root/repo/src/mem/dash_scheduler.cc" "src/CMakeFiles/emerald_mem.dir/mem/dash_scheduler.cc.o" "gcc" "src/CMakeFiles/emerald_mem.dir/mem/dash_scheduler.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/CMakeFiles/emerald_mem.dir/mem/dram.cc.o" "gcc" "src/CMakeFiles/emerald_mem.dir/mem/dram.cc.o.d"
  "/root/repo/src/mem/dram_channel.cc" "src/CMakeFiles/emerald_mem.dir/mem/dram_channel.cc.o" "gcc" "src/CMakeFiles/emerald_mem.dir/mem/dram_channel.cc.o.d"
  "/root/repo/src/mem/frfcfs_scheduler.cc" "src/CMakeFiles/emerald_mem.dir/mem/frfcfs_scheduler.cc.o" "gcc" "src/CMakeFiles/emerald_mem.dir/mem/frfcfs_scheduler.cc.o.d"
  "/root/repo/src/mem/functional_memory.cc" "src/CMakeFiles/emerald_mem.dir/mem/functional_memory.cc.o" "gcc" "src/CMakeFiles/emerald_mem.dir/mem/functional_memory.cc.o.d"
  "/root/repo/src/mem/memory_system.cc" "src/CMakeFiles/emerald_mem.dir/mem/memory_system.cc.o" "gcc" "src/CMakeFiles/emerald_mem.dir/mem/memory_system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/emerald_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
