#include "soc/soc_top.hh"

#include "cache/cache.hh"
#include "gpu/warp_sched.hh"
#include "mem/sched_factory.hh"
#include "mem/traffic_trace.hh"
#include "sim/logging.hh"
#include "soc/configs.hh"
#include "soc/replay.hh"

namespace emerald::soc
{

const char *
memConfigName(MemConfig config)
{
    switch (config) {
      case MemConfig::BAS: return "BAS";
      case MemConfig::DCB: return "DCB";
      case MemConfig::DTB: return "DTB";
      case MemConfig::HMC: return "HMC";
      default: return "unknown";
    }
}

/** One CPU core with its private L1/L2 chain into the memory. */
struct SocTop::CpuNode
{
    std::unique_ptr<cache::Cache> l1;
    std::unique_ptr<cache::Cache> l2;
    std::unique_ptr<noc::Link> link;
    std::unique_ptr<CpuCoreModel> core;
};

namespace
{

/**
 * FNV-1a over every SocParams field that shapes simulated state. Two
 * runs with equal fingerprints build identical topologies, so a
 * checkpoint from one is valid in the other; anything else is refused
 * at restore (unless --restore-force).
 */
std::uint64_t
fingerprintOf(const SocParams &p, const std::string &warp_policy,
              const std::string &mem_policy)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 0x00000100000001b3ULL;
        }
    };
    // Scheduling policies shape simulated state just like topology
    // parameters do; a checkpoint is only valid under the same pair.
    for (char c : warp_policy)
        mix(static_cast<unsigned char>(c));
    for (char c : mem_policy)
        mix(static_cast<unsigned char>(c));
    mix(static_cast<std::uint64_t>(p.memConfig));
    mix(p.highLoad);
    mix(p.numCpuCores);
    mix(p.dramChannels);
    mix(static_cast<std::uint64_t>(p.cpuClockMHz * 1000.0));
    mix(static_cast<std::uint64_t>(p.gpuClockMHz * 1000.0));
    mix(p.fbWidth);
    mix(p.fbHeight);
    mix(static_cast<std::uint64_t>(p.model));
    mix(p.frames);
    mix(p.cpuPrepRequests);
    mix(p.statsBucket);
    mix(p.refreshPeriod);
    mix(p.gpuFramePeriod);
    // NPU parameters shape state only when the NPU exists; mixing
    // them unconditionally would shift every disabled fingerprint.
    if (p.npuEnabled) {
        mix(1);
        mix(p.npuRows);
        mix(p.npuCols);
        mix(static_cast<std::uint64_t>(p.npuClockMHz * 1000.0));
        for (char c : p.npuModel)
            mix(static_cast<unsigned char>(c));
        mix(p.npuFramePeriod);
        mix(p.npuFrames);
        mix(p.npuQueueDepth);
        mix(p.npuDmaOutstanding);
        mix(p.npuScratchKB);
    }
    return h;
}

} // namespace

SocTop::SocTop(const SocParams &params,
               const SimulationBuilder &builder)
    : _params(params)
{
    builder.applyTo(_sim);

    // Resolve the scheduling policies up front: an explicit
    // --warp-sched/--mem-sched wins, else the MemConfig's native pair
    // (Table 6: DCB/DTB run DASH, BAS/HMC run FR-FCFS).
    const bool replay_mode = !_sim.replayTraceDir().empty();
    std::string warp_policy = _sim.warpSchedPolicy();
    if (warp_policy.empty())
        warp_policy = gpu::defaultWarpSchedPolicy;
    std::string mem_policy = _sim.memSchedPolicy();
    if (mem_policy.empty()) {
        mem_policy = (params.memConfig == MemConfig::DCB ||
                      params.memConfig == MemConfig::DTB)
                         ? "dash"
                         : mem::defaultMemSchedPolicy;
    }

    _sim.setConfigFingerprint(
        fingerprintOf(params, warp_policy, mem_policy));
    _cpuClock = &_sim.createClockDomain(params.cpuClockMHz, "cpu_clk");
    _gpuClock = &_sim.createClockDomain(params.gpuClockMHz, "gpu_clk");

    // Profile buckets for the SoC-level components that are not
    // SimObjects themselves (the SimObject ones register in their
    // own constructors).
    _sim.profiler().registerComponent("gfx");
    _sim.profiler().registerComponent("app");
    _sim.profiler().registerComponent("dash");
    for (unsigned i = 0; i < params.numCpuCores; ++i)
        _sim.profiler().registerComponent("cpu" + std::to_string(i));

    // Memory system (paper Tables 4 and 5): 2-channel 32-bit LPDDR3.
    mem::MemorySystemParams mp;
    mp.geom.channels = params.dramChannels;
    mp.geom.banks = 8;
    mp.geom.rowBytes = 4096;
    mp.geom.lineSize = 128;
    mp.timing = mem::lpddr3Timing(params.highLoad ? 133.0 : 1333.0, 32,
                                  128);
    mp.statsBucket = params.statsBucket;
    mp.queueCapacity = 64;

    if (params.memConfig == MemConfig::HMC) {
        mp.hmc = true;
        mp.hmcCpuChannels = 1;
        mp.hmcCpuScheme = mem::AddrMapScheme::RoRaBaCoCh;
        mp.hmcIpScheme = mem::AddrMapScheme::RoCoRaBaCh;
    } else {
        mp.unifiedScheme = mem::AddrMapScheme::RoRaBaCoCh;
    }

    mem::MemSchedContext sctx{_sim};
    // Table 3 values at 2 GHz CPU clock; policies that need no
    // coordinator ignore these.
    sctx.dashParams.switchingUnit = _cpuClock->cyclesToTicks(500);
    sctx.dashParams.quantum = _cpuClock->cyclesToTicks(1000000);
    sctx.dashParams.clusterThresh = 0.15;
    sctx.dashParams.useTotalBandwidth =
        params.memConfig == MemConfig::DTB;
    sctx.dashParams.numCpuCores = params.numCpuCores;
    mem::MemSchedBundle sched = mem::createMemScheduler(mem_policy,
                                                        sctx);
    _dashCoordinator = std::move(sched.coordinator);
    _scheduler = std::move(sched.scheduler);

    _memory = std::make_unique<mem::MemorySystem>(_sim, "dram", mp,
                                                  *_scheduler);

    // GPU (paper Table 5: 4 SIMT cores @ 950 MHz, shared 128 KB L2).
    gpu::GpuTopParams gp = caseStudy1GpuParams();
    gp.core.warpSched = warp_policy;
    _gpu = std::make_unique<gpu::GpuTop>(_sim, "gpu", *_gpuClock, gp,
                                         *_memory);

    if (replay_mode) {
        // Trace replay: the GPU's traffic comes from the recorded
        // stream, so no pipeline, scene, or app model is built.
        _replayTrace = std::make_unique<mem::TrafficTraceReader>(
            _sim.replayTraceDir());
    } else {
        core::GfxParams gfx;
        _pipeline = std::make_unique<core::GraphicsPipeline>(
            _sim, "gfx", *_gpu, params.fbWidth, params.fbHeight, gfx);

        _scene = std::make_unique<scenes::SceneRenderer>(
            *_pipeline, scenes::makeWorkload(params.model),
            _functionalMem);
    }

    // CPU cores with private L1 (32 KB) and L2 (1 MB).
    std::vector<CpuCoreModel *> core_ptrs;
    for (unsigned i = 0; i < params.numCpuCores; ++i) {
        auto node = std::make_unique<CpuNode>();
        std::string base = "cpu" + std::to_string(i);

        cache::CacheParams l2p;
        l2p.sizeBytes = 1024 * 1024;
        l2p.assoc = 16;
        l2p.lineSize = 128;
        l2p.hitLatency = 12;
        l2p.mshrs = 16;
        l2p.trafficClass = TrafficClass::Cpu;
        l2p.requestorId = static_cast<int>(i);
        node->l2 = std::make_unique<cache::Cache>(_sim, base + ".l2",
                                                  *_cpuClock, l2p);

        cache::CacheParams l1p;
        l1p.sizeBytes = 32 * 1024;
        l1p.assoc = 4;
        l1p.lineSize = 128;
        l1p.hitLatency = 2;
        l1p.mshrs = 8;
        l1p.trafficClass = TrafficClass::Cpu;
        l1p.requestorId = static_cast<int>(i);
        node->l1 = std::make_unique<cache::Cache>(_sim, base + ".l1",
                                                  *_cpuClock, l1p);
        node->l1->setDownstream(*node->l2);

        noc::LinkParams lp;
        lp.latency = ticksFromNs(20.0);
        lp.bytesPerSec = 0.0;
        lp.queueDepth = 32;
        node->link = std::make_unique<noc::Link>(
            _sim, base + ".link", lp);
        node->link->setTarget(*_memory);
        node->l2->setDownstream(*node->link);

        CpuCoreParams cp;
        cp.coreId = i;
        cp.maxOutstanding = 4;
        cp.thinkCycles = 30;
        cp.locality = 0.85;
        cp.regionBase = 0x20000000ULL + Addr(i) * 0x4000000ULL;
        cp.regionBytes = 8 * 1024 * 1024;
        // App threads stay busy while the frame renders (the paper's
        // Fig. 10 shows sustained CPU traffic during GPU frames).
        cp.backgroundInterval = 900;
        cp.backgroundOutstanding = 2;
        cp.seed = 1000 + i;
        node->core = std::make_unique<CpuCoreModel>(
            _sim, base, *_cpuClock, cp, *node->l1);
        core_ptrs.push_back(node->core.get());
        _cpus.push_back(std::move(node));
    }

    // Display controller reads the framebuffer over its own link.
    noc::LinkParams dlp;
    dlp.latency = ticksFromNs(30.0);
    dlp.bytesPerSec = 0.0;
    dlp.queueDepth = 16;
    _displayLink = std::make_unique<noc::Link>(_sim, "display.link",
                                               dlp);
    _displayLink->setTarget(*_memory);

    DisplayParams dp;
    dp.fbBase = replay_mode ? _replayTrace->fbBase()
                            : _scene->framebuffer().colorBase();
    dp.width = params.fbWidth;
    dp.height = params.fbHeight;
    dp.refreshPeriod = params.refreshPeriod;
    _display = std::make_unique<DisplayController>(
        _sim, "display", dp, *_displayLink, _dashCoordinator.get());

    // NPU: systolic-array accelerator as a fourth memory client, fed
    // by the camera-inference loop. Entirely absent when disabled so
    // the event stream (and hashes) of existing configs never move.
    if (params.npuEnabled) {
        _npuClock = &_sim.createClockDomain(params.npuClockMHz,
                                            "npu_clk");

        noc::LinkParams nlp;
        nlp.latency = ticksFromNs(30.0);
        nlp.bytesPerSec = 0.0;
        nlp.queueDepth = 16;
        _npuLink = std::make_unique<noc::Link>(_sim, "npu.link", nlp);
        _npuLink->setTarget(*_memory);

        npu::NpuParams np;
        np.systolic.rows = params.npuRows;
        np.systolic.cols = params.npuCols;
        np.systolic.spInputKB = params.npuScratchKB;
        np.systolic.spWeightKB = params.npuScratchKB;
        np.systolic.spOutputKB = params.npuScratchKB;
        np.model = params.npuModel;
        np.queueDepth = params.npuQueueDepth;
        np.dma.maxOutstanding = params.npuDmaOutstanding;
        np.dma.burstBytes = mp.geom.lineSize;
        _npu = std::make_unique<npu::NpuTop>(_sim, "npu", np,
                                             *_npuClock, *_npuLink);

        npu::CameraParams camp;
        camp.framePeriod = params.npuFramePeriod;
        camp.frames = params.npuFrames;
        _npuCam = std::make_unique<npu::CameraInferenceModel>(
            _sim, "npu.cam", camp, *_npu, _dashCoordinator.get());
        _npu->setInterruptClient(_npuCam.get());
    }

    if (replay_mode) {
        ReplayParams rp;
        rp.gpuFramePeriod = params.gpuFramePeriod;
        rp.cpuPrepRequests = params.cpuPrepRequests;
        rp.frames = params.frames;
        _replay = std::make_unique<TraceReplayDriver>(
            _sim, "replay", rp, *_replayTrace, *_gpu, core_ptrs,
            _dashCoordinator.get(), [this] { _done = true; });
    } else {
        AppParams ap;
        ap.gpuFramePeriod = params.gpuFramePeriod;
        ap.cpuPrepRequests = params.cpuPrepRequests;
        ap.frames = params.frames;
        _app = std::make_unique<AppModel>(_sim, "app", ap, *_scene,
                                          core_ptrs,
                                          _dashCoordinator.get(),
                                          [this] { _done = true; });

        // The framebuffer is functional state (not a SimObject) that
        // the display controller scans and golden-image tests hash;
        // it rides along as an extra section.
        _sim.registerSerializable("gfx.fb", _scene->framebuffer());
    }

    if (!_sim.captureTraceDir().empty()) {
        std::string label = replay_mode
                                ? _replayTrace->label()
                                : scenes::workloadName(params.model);
        Addr fb_base = replay_mode
                           ? _replayTrace->fbBase()
                           : _scene->framebuffer().colorBase();
        _traceWriter = std::make_unique<mem::TrafficTraceWriter>(
            _sim.captureTraceDir(), label, fb_base);
        if (replay_mode) {
            // Round-trip verification: re-capture the replayed
            // stream through the same writer path.
            _replay->setTraceCapture(_traceWriter.get());
        } else {
            _gpu->setTrafficCapture(_traceWriter.get());
            _app->setTraceCapture(_traceWriter.get());
        }
        // NPU DMA boundary rides along as an extra client stream
        // after the GPU cores; observation only (replay matches
        // clients by name and skips it).
        if (_npu) {
            unsigned client =
                _traceWriter->addClient(_npu->dma().name());
            _npu->dma().setTraceCapture(_traceWriter.get(), client);
        }
    }

    // Warm-start: with the whole topology (and its registries) built,
    // pull the checkpoint state in before any event runs.
    if (_sim.restorePending())
        _sim.restoreCheckpoint();
}

SocTop::~SocTop() = default;

void
SocTop::run(Tick limit)
{
    // A restored run resumes with the checkpoint's pending events
    // (vsync, scan, prep, poll) already re-scheduled; starting the
    // display or app again would double-schedule them.
    if (!_sim.restored()) {
        _display->start();
        if (_npuCam)
            _npuCam->start();
        if (_replay)
            _replay->start();
        else
            _app->start();
    }
    while (!_done && _sim.curTick() < limit) {
        if (!_sim.eventQueue().runOne())
            break;
    }
    fatal_if(!_done, "SoC simulation hit the safety limit at %.1f ms",
             msFromTicks(_sim.curTick()));
    _display->stop();
    if (_npuCam)
        _npuCam->stop();
    if (_traceWriter)
        _traceWriter->finalize();
    if (_dashCoordinator)
        _dashCoordinator->shutdown();
}

namespace
{

/** Mean of @p time over the profiled (non-warm-up) frames. */
template <typename Records, typename TimeOf>
double
meanFrameMs(const Records &frames, TimeOf time)
{
    if (frames.size() <= 1)
        return 0.0;
    double sum = 0.0;
    for (std::size_t i = 1; i < frames.size(); ++i)
        sum += msFromTicks(time(frames[i]));
    return sum / static_cast<double>(frames.size() - 1);
}

} // namespace

double
SocTop::meanGpuFrameMs() const
{
    if (_replay) {
        return meanFrameMs(_replay->frames(), [](const auto &f) {
            return f.gpuTime();
        });
    }
    return meanFrameMs(_app->frames(),
                       [](const auto &f) { return f.gpuTime(); });
}

double
SocTop::meanTotalFrameMs() const
{
    if (_replay) {
        return meanFrameMs(_replay->frames(), [](const auto &f) {
            return f.totalTime();
        });
    }
    return meanFrameMs(_app->frames(),
                       [](const auto &f) { return f.totalTime(); });
}

} // namespace emerald::soc
