# Empty compiler generated dependencies file for emerald_core.
# This may be replaced when dependencies are built.
