#!/usr/bin/env python3
"""AST-grounded shard-readiness analyzer (docs/static_analysis.md).

Where tools/emerald_lint.py pattern-matches single lines, this pass
reasons about scopes, classes and lifetimes, and enforces the property
the sharded event kernel (ROADMAP item 1) needs: no mutable state
reachable from outside a component except through its ports.

Rules:

  global-mutable-state
      Namespace-scope, function-local-static, or class-static non-const
      variables in src/.  Every shard would share them; each one must
      either move onto per-Simulation state or carry an allowlist entry
      with a written justification.

  cross-component-reach-through
      A SimObject field holding a raw pointer/reference to another
      SimObject type rather than a MemClient/MemSink/registry
      interface.  These are exactly the seams the shard partitioner
      cannot cut.

  event-capture-escape
      A lambda captured by reference and handed to the EventQueue
      (schedule/reschedule or an EventFunction) — the frame is gone by
      fire time.

  tick-state-smuggle
      `mutable` members, and writes to members from const methods.
      Logically-const caches become cross-shard write races once two
      threads tick the model.

  offer-checked, sched-factory
      Migrated from emerald_lint.py: checked AST-grounded when clang
      is available, with the original regex implementations as the
      textual fallback.

Engines:

  ast      clang `-Xclang -ast-dump=json -fsyntax-only` over
           compile_commands.json (no libclang).  Authoritative.
  textual  comment-stripped scope tracking; runs anywhere, carries the
           local ctest gate on machines without clang.
  auto     ast when clang + compile_commands.json are found, else
           textual (with a note saying so).

Findings are suppressed only by tools/analyze_allowlist.txt entries of
the form `rule path symbol -- justification`; the justification is
mandatory.  Exit status is the number of unallowlisted findings
(capped at 99).
"""

import argparse
import gzip
import hashlib
import json
import os
import re
import shlex
import shutil
import subprocess
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import emerald_lint  # noqa: E402  (shared strip_comments + rules)

SRC_SUFFIXES = {".cc", ".hh", ".cpp", ".hpp", ".h"}

# Port/registry/kernel types a component may legitimately point at:
# the seams the shard partitioner can cut (or per-shard kernel state).
INTERFACE_TYPES = {
    "SimObject", "Simulation", "SimulationBuilder", "EventQueue",
    "Event", "EventFunction", "MemSink", "MemClient", "StatGroup",
    "FaultDomain", "FaultInjector", "CheckContext", "ClockDomain",
    "TraceSink", "StatsSink",
}

ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
              "<<=", ">>="}

RULES = ("global-mutable-state", "cross-component-reach-through",
         "event-capture-escape", "tick-state-smuggle",
         "offer-checked", "sched-factory")


class Finding:
    def __init__(self, rule, path, line, symbol, message):
        self.rule = rule
        self.path = path          # repo-relative, forward slashes
        self.line = line
        self.symbol = symbol
        self.message = message

    def key(self):
        return (self.rule, self.path, self.line, self.symbol)

    def __str__(self):
        return (f"{self.path}:{self.line}: [{self.rule}] "
                f"{self.symbol}: {self.message}")


# allowlist -----------------------------------------------------------

ALLOW_RE = re.compile(
    r"^(?P<rule>[\w-]+)\s+(?P<path>\S+)\s+(?P<symbol>\S+)"
    r"\s+--\s+(?P<why>\S.*)$")


def load_allowlist(path):
    """Parse `rule path symbol -- justification` lines."""
    entries = []
    if not path.exists():
        return entries
    for lineno, raw in enumerate(path.read_text().splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = ALLOW_RE.match(line)
        if not match:
            sys.exit(f"{path}:{lineno}: bad allowlist entry (need "
                     f"`rule path symbol -- justification`): {line}")
        if match.group("rule") not in RULES:
            sys.exit(f"{path}:{lineno}: unknown rule "
                     f"'{match.group('rule')}'")
        entries.append({"rule": match.group("rule"),
                        "path": match.group("path"),
                        "symbol": match.group("symbol"),
                        "why": match.group("why"),
                        "used": False})
    return entries


def allowed(finding, entries):
    for entry in entries:
        if entry["rule"] != finding.rule:
            continue
        if entry["path"] != finding.path:
            continue
        if entry["symbol"] not in ("*", finding.symbol):
            continue
        entry["used"] = True
        return True
    return False


# textual engine ------------------------------------------------------

# Scope kinds for the brace tracker.
NS, CLASS, FUNC, ENUM, OTHER = "ns", "class", "func", "enum", "other"

DECL_SKIP_RE = re.compile(
    r"^\s*(using|typedef|friend|extern|template|return|case|goto|"
    r"public|private|protected|static_assert|namespace)\b")
FWD_DECL_RE = re.compile(r"^\s*(class|struct|enum|union)\b[^{=]*$")
STATIC_RE = re.compile(r"\b(?:inline\s+)?static\b(?!_cast|_assert)")
CONSTISH_RE = re.compile(r"\b(const|constexpr|constinit)\b")
SYMBOL_RE = re.compile(r"([A-Za-z_]\w*)\s*(?:\[[^\]]*\])?\s*$")

# `) const ... {` introduces a const member-function body.
CONST_METHOD_RE = re.compile(r"\)\s*const\b[^;{}]*\{")
# A write to a member (`_x = v`, `++_x`, `_x += v`, `this->x = v`).
MEMBER_WRITE_RE = re.compile(
    r"(\+\+|--)\s*(?:this->)?(_\w+)|"
    r"\b(?:this->)?(_\w+)(?:\[[^\]]*\])?\s*"
    r"(?:(\+\+|--)|(?<![<>=!+\-*/&|^])(?:[+\-*/%&|^]|<<|>>)?=(?!=))")

MUTABLE_FIELD_RE = re.compile(
    r"^\s*mutable\s+[\w:<>,\s*&\[\]]+?([A-Za-z_]\w*)\s*"
    r"(=[^;]*|\{[^;]*)?;")

FIELD_PTR_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?P<type>[A-Za-z_][\w:]*(?:<[^;]*>)?)"
    r"(?:\s+const)?\s*(?P<ptr>[*&]+)\s*(?:const\s+)?"
    r"(?P<name>[A-Za-z_]\w*)\s*(=[^;]*|\{[^;]*\})?;")

CLASS_HEAD_RE = re.compile(
    r"\b(class|struct)\s+(?:\[\[[^\]]*\]\]\s*)?"
    r"(?:EMERALD_\w+\s+)?(?P<name>[A-Za-z_]\w*)\s*"
    r"(?:final\s*)?(?::\s*(?P<bases>[^{;]+))?$")

CAPTURE_SINK_RE = re.compile(
    r"(?:\b(?:re)?schedule\w*\s*\(|\bEventFunction\b\s*\w*\s*[({])")
LAMBDA_CAPTURE_RE = re.compile(r"\[([^\[\]]*)\]\s*(?:\([^)]*\))?\s*"
                               r"(?:mutable\s*)?(?:->[^{]*)?\{")


def _strip_parens(text):
    """Blank out balanced parenthesis contents."""
    out, depth = [], 0
    for ch in text:
        if ch == "(":
            depth += 1
            out.append(ch)
        elif ch == ")":
            depth = max(0, depth - 1)
            out.append(ch)
        else:
            out.append(ch if depth == 0 else " ")
    return "".join(out)


def _strip_templates(text):
    out, depth = [], 0
    for ch in text:
        if ch == "<":
            depth += 1
        elif ch == ">":
            depth = max(0, depth - 1)
        elif depth == 0:
            out.append(ch)
    return "".join(out)


def _base_type(type_text):
    """`const emerald::mem::Cache` -> `Cache`."""
    text = _strip_templates(type_text)
    text = re.sub(r"\b(const|volatile|struct|class)\b", " ", text)
    text = text.replace("*", " ").replace("&", " ")
    parts = text.strip().rsplit("::", 1)
    return parts[-1].strip()


class TextScanner:
    """One pass over comment-stripped text, tracking brace scopes and
    emitting (statement, scopes, class-name, line) tuples."""

    def __init__(self, clean_text):
        self.text = clean_text
        self.statements = []       # (stmt, tuple(scopes), class, line)
        self.classes = {}          # name -> [base names]
        self._scan()

    def _scope_kind(self, pending, scopes):
        head = pending.strip()
        if re.search(r"\bnamespace\b[^=;]*$", head):
            return NS, None
        match = CLASS_HEAD_RE.search(head)
        if match and "enum" not in head.split():
            bases = []
            if match.group("bases"):
                for base in match.group("bases").split(","):
                    base = re.sub(r"\b(public|private|protected|"
                                  r"virtual)\b", " ", base)
                    name = _base_type(base)
                    if name:
                        bases.append(name)
            name = match.group("name")
            self.classes.setdefault(name, []).extend(bases)
            return CLASS, name
        if re.search(r"\benum\b", head):
            return ENUM, None
        return FUNC, None

    def _scan(self):
        scopes = []            # (kind, class_name, saved_stmt)
        stmt = []
        line = 1
        stmt_line = 1
        text = self.text
        i = 0
        while i < len(text):
            ch = text[i]
            if ch == "\n":
                line += 1
                if not "".join(stmt).strip():
                    stmt_line = line
                stmt.append(" ")
            elif ch == "{":
                pending = "".join(stmt)
                kind, cls = self._scope_kind(pending, scopes)
                # Restore the statement after `}` only when the brace
                # belongs to an initializer (top-level `=` before it);
                # bodies of functions/classes end the statement.
                keep = ("=" in _strip_parens(pending)
                        and kind == FUNC)
                scopes.append((kind, cls,
                               (pending + "{}", stmt_line)
                               if keep else None))
                stmt = []
                stmt_line = line
            elif ch == "}":
                saved = scopes.pop()[2] if scopes else None
                if saved:
                    stmt = [saved[0]]
                    stmt_line = saved[1]
                else:
                    stmt = []
                    stmt_line = line
            elif ch == ";":
                body = "".join(stmt).strip()
                body = re.sub(r"^(?:\s*(?:public|private|protected)"
                              r"\s*:)+\s*", "", body)
                if body:
                    kinds = tuple(k for k, _, _ in scopes)
                    cls = next((c for _, c, _ in reversed(scopes)
                                if c), None)
                    self.statements.append(
                        (body, kinds, cls, stmt_line))
                stmt = []
                stmt_line = line
            else:
                stmt.append(ch)
                # Access-specifier labels are statement separators;
                # folding them into the next statement would pin its
                # reported line to the label's line.
                if ch == ":" and "".join(stmt).strip() in (
                        "public:", "private:", "protected:"):
                    stmt = []
                    stmt_line = line
            i += 1


STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')
CHAR_RE = re.compile(r"'(?:[^'\\]|\\.)'")


def _clean_text(path):
    """Comment-stripped text with preprocessor lines blanked and
    string/char literal contents removed, so the brace tracker never
    sees braces or semicolons that are not code."""
    text = path.read_text(encoding="utf-8", errors="replace")
    clean = [line for _, line in
             emerald_lint.strip_comments(text.splitlines())]
    in_directive = False
    out = []
    for line in clean:
        if in_directive or line.lstrip().startswith("#"):
            in_directive = line.rstrip().endswith("\\")
            out.append("")
            continue
        line = STRING_RE.sub('""', line)
        line = CHAR_RE.sub("''", line)
        out.append(line)
    return "\n".join(out)


class TextualEngine:
    """Regex/scope-tracking fallback; same rules, no compiler."""

    name = "textual"

    def __init__(self, root, rules):
        self.root = root
        self.rules = rules
        self.findings = []
        self._scanners = {}    # rel -> TextScanner
        self._classes = {}     # class -> bases (merged over files)

    def run(self, files):
        for path in files:
            rel = rel_path(path, self.root)
            scanner = TextScanner(_clean_text(path))
            self._scanners[rel] = scanner
            for cls, bases in scanner.classes.items():
                self._classes.setdefault(cls, []).extend(bases)
        derived = simobject_closure(self._classes)
        for rel, scanner in sorted(self._scanners.items()):
            self._scan_file(rel, scanner, derived)
        return self.findings

    # -- per-file rules ------------------------------------------------

    def _scan_file(self, rel, scanner, derived):
        if "global-mutable-state" in self.rules:
            self._global_state(rel, scanner)
        if "cross-component-reach-through" in self.rules:
            self._reach_through(rel, scanner, derived)
        if "tick-state-smuggle" in self.rules:
            self._tick_smuggle(rel, scanner)
        if "event-capture-escape" in self.rules:
            self._capture_escape(rel, scanner)
        if "offer-checked" in self.rules or \
                "sched-factory" in self.rules:
            self._lint_fallback(rel)

    def _emit(self, rule, rel, line, symbol, message):
        self.findings.append(Finding(rule, rel, line, symbol, message))

    def _global_state(self, rel, scanner):
        for stmt, kinds, _cls, line in scanner.statements:
            if DECL_SKIP_RE.match(stmt) or FWD_DECL_RE.match(stmt):
                continue
            is_static = bool(STATIC_RE.search(stmt))
            at_ns = bool(kinds) and all(k == NS for k in kinds)
            if not is_static and not at_ns:
                continue
            if CONSTISH_RE.search(_strip_templates(
                    stmt.split("=", 1)[0])):
                continue
            decl = stmt.split("=", 1)[0].rstrip()
            if decl.endswith("{}"):       # function/struct body
                continue
            no_parens = _strip_parens(decl)
            if "(" in no_parens or decl.endswith(")"):
                continue                   # function declaration
            if not at_ns and "(" in _strip_templates(decl):
                continue                   # ctor-style initializer
            match = SYMBOL_RE.search(_strip_templates(decl))
            if not match:
                continue
            symbol = match.group(1)
            if symbol in ("override", "final", "default", "delete",
                          "noexcept"):
                continue
            where = ("namespace scope" if at_ns and not is_static
                     else "static storage")
            self._emit(
                "global-mutable-state", rel, line, symbol,
                f"mutable variable with {where} — every shard would "
                "share it; move it onto per-Simulation state or "
                "allowlist it with a justification")

    def _reach_through(self, rel, scanner, derived):
        for stmt, kinds, cls, line in scanner.statements:
            if not kinds or kinds[-1] != CLASS or cls not in derived:
                continue
            match = FIELD_PTR_RE.match(stmt + ";")
            if not match:
                continue
            target = _base_type(match.group("type"))
            if target not in derived or target in INTERFACE_TYPES:
                continue
            self._emit(
                "cross-component-reach-through", rel, line,
                match.group("name"),
                f"{cls} holds a raw {match.group('ptr')} to component "
                f"type {target} — reach through a MemClient/port/"
                "registry interface instead so the shard partitioner "
                "can cut the seam")

    def _tick_smuggle(self, rel, scanner):
        for stmt, kinds, _cls, line in scanner.statements:
            if not kinds or kinds[-1] != CLASS:
                continue
            match = MUTABLE_FIELD_RE.match(stmt + ";")
            if match:
                self._emit(
                    "tick-state-smuggle", rel, line, match.group(1),
                    "`mutable` member — a logically-const cache "
                    "becomes a cross-shard write race; make the "
                    "mutation explicit or allowlist with the "
                    "synchronization story")
        text = self._scanners[rel].text
        for method in CONST_METHOD_RE.finditer(text):
            body, end = _balanced_braces(text, method.end() - 1)
            if body is None:
                continue
            offset = method.end()
            for write in MEMBER_WRITE_RE.finditer(body):
                symbol = write.group(2) or write.group(3)
                if not symbol:
                    continue
                line = text.count("\n", 0, offset + write.start()) + 1
                self._emit(
                    "tick-state-smuggle", rel, line, symbol,
                    "member written from a const method — hidden "
                    "state change on the tick path; make the method "
                    "non-const or allowlist with the reason it is "
                    "safe")

    def _capture_escape(self, rel, scanner):
        text = scanner.text
        for sink in CAPTURE_SINK_RE.finditer(text):
            args, _end = _balanced(text, sink.end() - 1, "()" if
                                   text[sink.end() - 1] == "(" else
                                   "{}")
            if args is None:
                continue
            for lam in LAMBDA_CAPTURE_RE.finditer(args):
                captures = [c.strip() for c in
                            lam.group(1).split(",") if c.strip()]
                by_ref = [c for c in captures
                          if c == "&" or (c.startswith("&") and
                                          c != "&&")]
                if not by_ref:
                    continue
                line = text.count("\n", 0,
                                  sink.end() + lam.start()) + 1
                self._emit(
                    "event-capture-escape", rel, line,
                    ",".join(by_ref),
                    "lambda captures by reference but is handed to "
                    "the event queue — the frame is gone by fire "
                    "time; capture by value or bind `this`")

    def _lint_fallback(self, rel):
        path = self.root / rel
        clean = list(emerald_lint.strip_comments(
            path.read_text(encoding="utf-8",
                           errors="replace").splitlines()))
        out = []
        if "offer-checked" in self.rules:
            emerald_lint.check_offer_checked(rel, clean, out)
        if "sched-factory" in self.rules:
            emerald_lint.check_sched_factory(rel, clean, out)
        for violation in out:
            self._emit(violation.rule, rel, violation.line, "-",
                       violation.text)


def _balanced(text, start, pair):
    """Return (contents, end) of the balanced pair opening at start."""
    op, cl = pair
    if start >= len(text) or text[start] != op:
        return None, start
    depth = 0
    for i in range(start, len(text)):
        if text[i] == op:
            depth += 1
        elif text[i] == cl:
            depth -= 1
            if depth == 0:
                return text[start + 1:i], i
    return None, start


def _balanced_braces(text, start):
    return _balanced(text, start, "{}")


def simobject_closure(classes):
    """Transitive set of classes deriving from SimObject."""
    derived = {"SimObject"}
    changed = True
    while changed:
        changed = False
        for cls, bases in classes.items():
            if cls not in derived and any(b in derived
                                          for b in bases):
                derived.add(cls)
                changed = True
    return derived


# ast engine ----------------------------------------------------------

def find_clang():
    if os.environ.get("EMERALD_CLANG"):
        return os.environ["EMERALD_CLANG"]
    for name in ("clang++", "clang", "clang++-19", "clang++-18",
                 "clang++-17", "clang++-16"):
        path = shutil.which(name)
        if path:
            return path
    return None


class LocTracker:
    """clang's JSON dump differentially encodes file/line: each is
    omitted when unchanged from the previously printed location."""

    def __init__(self):
        self.file = None
        self.line = None

    def update(self, loc):
        if not isinstance(loc, dict):
            return
        if "expansionLoc" in loc or "spellingLoc" in loc:
            # Spelling is printed first, expansion second; replay in
            # that order so the differential state stays in sync.
            self.update(loc.get("spellingLoc"))
            self.update(loc.get("expansionLoc"))
            return
        if "file" in loc:
            self.file = loc["file"]
        if "line" in loc:
            self.line = loc["line"]


class AstEngine:
    """clang -ast-dump=json over compile_commands.json."""

    name = "ast"

    def __init__(self, root, rules, clang, compdb_path, cache_dir,
                 extra_scope=()):
        self.root = root
        self.rules = rules
        self.clang = clang
        self.compdb_path = compdb_path
        self.cache_dir = cache_dir
        self.findings = []
        self.analyzed = set()       # absolute paths of TUs consumed
        self._scope = set(extra_scope)  # extra rel paths to report on
        self._seen = set()
        self._classes = {}          # name -> set(bases)
        self._fields = []           # candidate reach-through fields
        self._version = subprocess.run(
            [clang, "--version"], capture_output=True,
            text=True).stdout.splitlines()[0]

    def run(self, files):
        wanted = {str(p.resolve()) for p in files}
        entries = json.loads(self.compdb_path.read_text())
        tus = []
        for entry in entries:
            src = Path(entry["directory"]) / entry["file"]
            src = Path(os.path.normpath(src))
            if str(src) in wanted:
                tus.append((src, entry))
        if not tus:
            sys.exit("emerald_analyze: compile_commands.json has no "
                     "entry for the requested files")
        for src, entry in tus:
            self._one_tu(src, entry)
            self.analyzed.add(str(src))
        self._resolve_fields()
        return self.findings

    # -- per-TU --------------------------------------------------------

    def _clang_args(self, entry):
        if "arguments" in entry:
            args = list(entry["arguments"])
        else:
            args = shlex.split(entry["command"])
        args[0] = self.clang
        out = []
        skip = False
        for arg in args:
            if skip:
                skip = False
                continue
            if arg in ("-o", "-MF", "-MT", "-MQ"):
                skip = True
                continue
            if arg in ("-c", "-MD", "-MMD") or arg.endswith(".o"):
                continue
            out.append(arg)
        out += ["-fsyntax-only", "-Wno-everything",
                "-Xclang", "-ast-dump=json"]
        return out

    def _cache_key(self, entry, args):
        pre = subprocess.run(
            [a for a in args if a not in
             ("-Xclang", "-ast-dump=json", "-fsyntax-only")]
            + ["-E"],
            cwd=entry["directory"], capture_output=True)
        digest = hashlib.sha256()
        digest.update(self._version.encode())
        digest.update(" ".join(args).encode())
        digest.update(pre.stdout)
        return digest.hexdigest()

    def _one_tu(self, src, entry):
        args = self._clang_args(entry)
        cache_file = None
        if self.cache_dir:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            key = self._cache_key(entry, args)
            cache_file = self.cache_dir / f"{key}.json.gz"
            if cache_file.exists():
                state = json.loads(gzip.decompress(
                    cache_file.read_bytes()))
                self._absorb(state)
                return
        proc = subprocess.run(args, cwd=entry["directory"],
                              capture_output=True)
        if proc.returncode != 0:
            sys.exit(f"emerald_analyze: clang failed on {src}:\n"
                     f"{proc.stderr.decode(errors='replace')[:2000]}")
        ast = json.loads(proc.stdout)
        state = self._extract(ast)
        self._absorb(state)
        if cache_file:
            cache_file.write_bytes(gzip.compress(
                json.dumps(state).encode()))

    def _absorb(self, state):
        for cls, bases in state["classes"].items():
            self._classes.setdefault(cls, set()).update(bases)
        self._fields.extend(state["fields"])
        for f in state["findings"]:
            finding = Finding(*f)
            if finding.key() not in self._seen:
                self._seen.add(finding.key())
                self.findings.append(finding)

    # -- AST walk ------------------------------------------------------

    def _extract(self, ast):
        state = {"classes": {}, "fields": [], "findings": []}
        tracker = LocTracker()
        self._walk(ast, [], tracker, state)
        return state

    def _rel(self, tracker):
        if not tracker.file:
            return None
        path = Path(tracker.file)
        if not path.is_absolute():
            path = (self.root / path).resolve()
        try:
            return path.resolve().relative_to(
                self.root).as_posix()
        except ValueError:
            return None

    def _in_src(self, rel):
        if rel is None:
            return False
        return rel in self._scope or rel.startswith("src/")

    def _walk(self, node, ancestors, tracker, state):
        if isinstance(node, list):
            for item in node:
                self._walk(item, ancestors, tracker, state)
            return
        if not isinstance(node, dict):
            return
        tracker.update(node.get("loc"))
        rng = node.get("range")
        if isinstance(rng, dict):
            tracker.update(rng.get("begin"))
        here = (tracker.file, tracker.line)
        self._visit(node, ancestors, here, state)
        ancestors.append(node)
        for child in node.get("inner", []) or []:
            self._walk(child, ancestors, tracker, state)
        ancestors.pop()
        if isinstance(rng, dict):
            tracker.update(rng.get("end"))

    def _visit(self, node, ancestors, here, state):
        kind = node.get("kind")
        if kind == "CXXRecordDecl" and node.get("name"):
            bases = [_base_type(b.get("type", {}).get("qualType", ""))
                     for b in node.get("bases", [])]
            if node.get("completeDefinition") or bases:
                state["classes"].setdefault(
                    node["name"], []).extend(b for b in bases if b)
        if kind == "VarDecl":
            self._var_decl(node, ancestors, here, state)
        if kind == "FieldDecl":
            self._field_decl(node, ancestors, here, state)
        if kind in ("BinaryOperator", "CompoundAssignOperator",
                    "UnaryOperator"):
            self._member_write(node, ancestors, here, state)
        if kind == "LambdaExpr":
            self._lambda(node, ancestors, here, state)
        if kind == "CXXMemberCallExpr":
            self._offer_call(node, ancestors, here, state)
        if kind in ("CXXNewExpr", "CXXConstructExpr",
                    "CXXTemporaryObjectExpr", "CallExpr"):
            self._sched_construct(node, kind, here, state)

    def _emit(self, state, rule, here, symbol, message):
        file, line = here
        rel = self._rel_of(file)
        if not self._in_src(rel):
            return
        state["findings"].append(
            [rule, rel, line or 0, symbol, message])

    def _rel_of(self, file):
        tracker = LocTracker()
        tracker.file = file
        return self._rel(tracker)

    @staticmethod
    def _type_of(node):
        return node.get("type", {}).get("qualType", "")

    @staticmethod
    def _is_const_type(qual_type):
        stripped = _strip_templates(qual_type)
        return bool(re.search(r"\bconst\b", stripped))

    def _var_decl(self, node, ancestors, here, state):
        if "global-mutable-state" not in self.rules:
            return
        if node.get("isImplicit"):
            return
        storage = node.get("storageClass", "")
        if storage == "extern":
            return
        if node.get("constexpr"):
            return
        if self._is_const_type(self._type_of(node)):
            return
        kinds = [a.get("kind") for a in ancestors]
        in_func = any(k in ("FunctionDecl", "CXXMethodDecl",
                            "CXXConstructorDecl", "CXXDestructorDecl",
                            "CXXConversionDecl", "LambdaExpr")
                      for k in kinds)
        in_class = any(k == "CXXRecordDecl" for k in kinds)
        at_ns = all(k in ("TranslationUnitDecl", "NamespaceDecl",
                          "LinkageSpecDecl", None)
                    for k in kinds)
        if (in_func or in_class) and storage != "static":
            return
        if not (at_ns or storage == "static"):
            return
        where = ("namespace scope" if at_ns else "static storage")
        self._emit(state, "global-mutable-state", here,
                   node.get("name", "?"),
                   f"mutable variable with {where} — every shard "
                   "would share it; move it onto per-Simulation "
                   "state or allowlist it with a justification")

    def _field_decl(self, node, ancestors, here, state):
        name = node.get("name", "")
        qual = self._type_of(node)
        if "tick-state-smuggle" in self.rules and \
                (node.get("mutable") or node.get("isMutable")):
            self._emit(state, "tick-state-smuggle", here, name,
                       "`mutable` member — a logically-const cache "
                       "becomes a cross-shard write race; make the "
                       "mutation explicit or allowlist with the "
                       "synchronization story")
        if "cross-component-reach-through" in self.rules and \
                re.search(r"[*&]\s*$", qual):
            owner = next((a.get("name") for a in reversed(ancestors)
                          if a.get("kind") == "CXXRecordDecl"), None)
            if owner:
                file, line = here
                state["fields"].append(
                    [owner, name, _base_type(qual),
                     qual.strip()[-1], self._rel_of(file), line or 0])

    def _member_write(self, node, ancestors, here, state):
        """Write to a this-member while the innermost enclosing method
        is const.  Checked during the main walk so `here` carries the
        write's own (differentially decoded) line."""
        if "tick-state-smuggle" not in self.rules:
            return
        kind = node.get("kind")
        if kind == "UnaryOperator":
            if node.get("opcode") not in ("++", "--"):
                return
        elif node.get("opcode") not in ASSIGN_OPS:
            return
        inner = node.get("inner", []) or []
        member = self._this_member(inner[0] if inner else None)
        if not member:
            return
        method = next((a for a in reversed(ancestors)
                       if a.get("kind") in
                       ("CXXMethodDecl", "CXXConstructorDecl",
                        "CXXDestructorDecl", "FunctionDecl",
                        "LambdaExpr")), None)
        if method is None or method.get("kind") != "CXXMethodDecl":
            return
        if " const" not in self._type_of(method):
            return
        self._emit(state, "tick-state-smuggle", here, member,
                   "member written from a const method — hidden "
                   "state change on the tick path; make the method "
                   "non-const or allowlist with the reason it is "
                   "safe")

    def _this_member(self, node):
        """Name of the this-member the expression resolves to."""
        if not isinstance(node, dict):
            return None
        if node.get("kind") == "MemberExpr":
            inner = node.get("inner", []) or []
            sub = inner[0] if inner else {}
            while isinstance(sub, dict) and sub.get("kind") in (
                    "ImplicitCastExpr", "ParenExpr"):
                sub_inner = sub.get("inner", []) or []
                sub = sub_inner[0] if sub_inner else {}
            if isinstance(sub, dict) and \
                    sub.get("kind") == "CXXThisExpr":
                return node.get("name")
            return None
        if node.get("kind") in ("ImplicitCastExpr", "ParenExpr",
                                "ArraySubscriptExpr"):
            inner = node.get("inner", []) or []
            return self._this_member(inner[0]) if inner else None
        return None

    def _lambda(self, node, ancestors, here, state):
        if "event-capture-escape" not in self.rules:
            return
        sink = False
        for anc in reversed(ancestors):
            kind = anc.get("kind", "")
            if kind in ("CXXMemberCallExpr", "CallExpr"):
                if "schedule" in self._callee_name(anc):
                    sink = True
                    break
            if kind in ("CXXConstructExpr", "CXXTemporaryObjectExpr"):
                if "EventFunction" in self._type_of(anc):
                    sink = True
                    break
            if kind in ("FunctionDecl", "CXXMethodDecl",
                        "CompoundStmt"):
                break
        if not sink:
            return
        closure = next((c for c in node.get("inner", []) or []
                        if c.get("kind") == "CXXRecordDecl"), None)
        by_ref = []
        for field in (closure or {}).get("inner", []) or []:
            if field.get("kind") != "FieldDecl":
                continue
            if self._type_of(field).rstrip().endswith("&"):
                by_ref.append(field.get("name") or "&")
        if by_ref:
            self._emit(state, "event-capture-escape", here,
                       ",".join(by_ref),
                       "lambda captures by reference but is handed "
                       "to the event queue — the frame is gone by "
                       "fire time; capture by value or bind `this`")

    def _callee_name(self, call):
        inner = call.get("inner", []) or []
        head = inner[0] if inner else {}
        while isinstance(head, dict):
            if head.get("kind") == "MemberExpr":
                return head.get("name", "")
            if head.get("kind") == "DeclRefExpr":
                ref = head.get("referencedDecl", {})
                return ref.get("name", "")
            sub = head.get("inner", []) or []
            head = sub[0] if sub else None
        return ""

    def _offer_call(self, node, ancestors, here, state):
        """offer() used as a bare expression statement: its parent in
        the AST is the enclosing CompoundStmt (possibly through an
        ExprWithCleanups wrapper), so the bool result is discarded."""
        if "offer-checked" not in self.rules:
            return
        if self._callee_name(node) != "offer":
            return
        parent = ancestors[-1] if ancestors else {}
        if parent.get("kind") == "ExprWithCleanups" and \
                len(ancestors) >= 2:
            parent = ancestors[-2]
        if parent.get("kind") != "CompoundStmt":
            return
        self._emit(state, "offer-checked", here, "offer",
                   "offer() result ignored — a rejected offer leaves "
                   "the packet with the caller "
                   "(docs/memory_protocol.md)")

    def _sched_construct(self, node, kind, here, state):
        if "sched-factory" not in self.rules:
            return
        qual = self._type_of(node)
        if kind == "CallExpr":
            # make_unique<Policy>(...) — the result type names it.
            if "make_unique" not in self._callee_name(node):
                return
        if not re.search(emerald_lint.SCHED_CLASSES, qual):
            return
        file, _line = here
        rel = self._rel_of(file)
        if rel in emerald_lint.SCHED_FACTORY_ALLOWLIST:
            return
        self._emit(state, "sched-factory", here,
                   _base_type(qual) or "-",
                   "direct construction of a scheduling policy — go "
                   "through createWarpScheduler()/createMemScheduler()"
                   " so --warp-sched/--mem-sched stay authoritative "
                   "(docs/scheduling.md)")

    # -- post-pass -----------------------------------------------------

    def _resolve_fields(self):
        if "cross-component-reach-through" not in self.rules:
            return
        derived = simobject_closure(
            {k: list(v) for k, v in self._classes.items()})
        for owner, name, target, ptr, rel, line in self._fields:
            if owner not in derived:
                continue
            if target not in derived or target in INTERFACE_TYPES:
                continue
            finding = Finding(
                "cross-component-reach-through", rel, line, name,
                f"{owner} holds a raw {ptr} to component type "
                f"{target} — reach through a MemClient/port/registry "
                "interface instead so the shard partitioner can cut "
                "the seam")
            if self._in_src(rel) and finding.key() not in self._seen:
                self._seen.add(finding.key())
                self.findings.append(finding)


# driver --------------------------------------------------------------

def rel_path(path, root):
    try:
        return path.resolve().relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root (default: inferred)")
    parser.add_argument("--compile-commands", type=Path,
                        help="compile_commands.json for the ast "
                             "engine (default: <root>/build/)")
    parser.add_argument("--cache-dir", type=Path,
                        help="cache directory for per-TU AST "
                             "extraction results")
    parser.add_argument("--allowlist", type=Path,
                        help="allowlist file (default: "
                             "tools/analyze_allowlist.txt)")
    parser.add_argument("--engine",
                        choices=("auto", "ast", "textual"),
                        default="auto")
    parser.add_argument("--rules",
                        help="comma-separated rule subset "
                             f"(default: all of {','.join(RULES)})")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as JSON on stdout")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("paths", nargs="*",
                        help="files to analyze (default: all of "
                             "src/; bare files always use the "
                             "textual engine unless --engine=ast)")
    args = parser.parse_args(argv)

    if args.list_rules:
        print("\n".join(RULES))
        return 0

    root = args.root.resolve()
    rules = set(RULES)
    if args.rules:
        rules = set(args.rules.split(","))
        unknown = rules - set(RULES)
        if unknown:
            sys.exit(f"emerald_analyze: unknown rule(s): "
                     f"{','.join(sorted(unknown))}")

    if args.paths:
        files = [Path(p) for p in args.paths]
    else:
        files = sorted(p for p in (root / "src").rglob("*")
                       if p.suffix in SRC_SUFFIXES)

    compdb = args.compile_commands
    if compdb is None:
        candidate = root / "build" / "compile_commands.json"
        compdb = candidate if candidate.exists() else None
    clang = find_clang()

    engine_name = args.engine
    if engine_name == "auto":
        if clang and compdb and not args.paths:
            engine_name = "ast"
        else:
            reason = ("clang not found" if not clang else
                      "no compile_commands.json" if not compdb else
                      "explicit file list")
            print(f"emerald_analyze: note: {reason}; using the "
                  "textual engine (the AST engine is authoritative "
                  "in CI)", file=sys.stderr)
            engine_name = "textual"

    if engine_name == "ast":
        if not clang:
            sys.exit("emerald_analyze: --engine=ast but no clang "
                     "on PATH (set EMERALD_CLANG)")
        if args.paths:
            # Bare files (fixtures): synthesize a compile db.
            import tempfile
            tmp = Path(tempfile.mkdtemp(prefix="emerald-analyze-"))
            entries = [{"directory": str(tmp),
                        "file": str(Path(p).resolve()),
                        "arguments": [clang, "-x", "c++",
                                      "-std=c++17",
                                      str(Path(p).resolve())]}
                       for p in args.paths]
            compdb = tmp / "compile_commands.json"
            compdb.write_text(json.dumps(entries))
        elif not compdb:
            sys.exit("emerald_analyze: --engine=ast needs "
                     "compile_commands.json (configure with "
                     "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)")
        # The AST sees headers through their including TUs, so only
        # feed .cc files; header findings surface with header paths.
        tu_files = [f for f in files
                    if f.suffix in (".cc", ".cpp")] or files
        extra_scope = ([rel_path(Path(p), root) for p in args.paths]
                       if args.paths else ())
        engine = AstEngine(root, rules, clang, compdb,
                           args.cache_dir, extra_scope=extra_scope)
        findings = engine.run(tu_files)
        # Headers nothing includes — and sources missing from the
        # compile db — are invisible to the AST pass; sweep whatever
        # it did not actually consume textually so nothing hides
        # there.
        if not args.paths:
            rest = [f for f in files
                    if str(f.resolve()) not in engine.analyzed]
            if rest:
                textual = TextualEngine(root, rules)
                known = {f.key() for f in findings}
                findings += [f for f in textual.run(rest)
                             if f.key() not in known]
    else:
        engine = TextualEngine(root, rules)
        findings = engine.run(files)

    allow_path = args.allowlist or (root / "tools" /
                                    "analyze_allowlist.txt")
    entries = load_allowlist(allow_path)
    reported = [f for f in findings
                if not allowed(f, entries)]
    reported.sort(key=lambda f: (f.path, f.line, f.rule))

    if args.json:
        print(json.dumps([vars(f) for f in reported], indent=1))
    else:
        for finding in reported:
            print(finding)
    for entry in entries:
        if not entry["used"]:
            print(f"emerald_analyze: warning: unused allowlist "
                  f"entry {entry['rule']} {entry['path']} "
                  f"{entry['symbol']}", file=sys.stderr)
    if reported:
        print(f"emerald_analyze: {len(reported)} unallowlisted "
              f"finding(s) [{engine_name} engine]", file=sys.stderr)
    else:
        print(f"emerald_analyze: clean [{engine_name} engine, "
              f"{len(files)} file(s)]", file=sys.stderr)
    return min(len(reported), 99)


if __name__ == "__main__":
    sys.exit(main())
