/**
 * @file
 * Render every workload in the library to a PPM image (the paper's
 * Fig. 16 shows its workloads "rendered with Emerald"; this does the
 * same for the procedural stand-ins) and print per-workload frame
 * statistics.
 *
 * Usage: render_scenes [--width=256] [--height=192] [--outdir=.]
 */

#include <cstdio>
#include <string>

#include "sim/config.hh"
#include "scenes/workloads.hh"
#include "soc/configs.hh"

using namespace emerald;

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    unsigned width = static_cast<unsigned>(cfg.getU64("width", 256));
    unsigned height = static_cast<unsigned>(cfg.getU64("height", 192));
    std::string outdir = cfg.getString("outdir", ".");

    const scenes::WorkloadId all[] = {
        scenes::WorkloadId::W1_Sibenik,
        scenes::WorkloadId::W2_Spot,
        scenes::WorkloadId::W3_Cube,
        scenes::WorkloadId::W4_Suzanne,
        scenes::WorkloadId::W5_SuzanneAlpha,
        scenes::WorkloadId::W6_Teapot,
        scenes::WorkloadId::M1_Chair,
        scenes::WorkloadId::M2_Cube,
        scenes::WorkloadId::M3_Mask,
        scenes::WorkloadId::M4_Triangles,
    };

    std::printf("%-18s %9s %9s %10s %12s\n", "workload", "tris",
                "prims", "fragments", "GPU cycles");

    for (scenes::WorkloadId id : all) {
        // A fresh rig per workload keeps runs independent.
        soc::StandaloneGpu rig(width, height);
        scenes::SceneRenderer scene(rig.pipeline(),
                                    scenes::makeWorkload(id),
                                    rig.functionalMemory());
        bool done = false;
        core::FrameStats stats;
        scene.renderFrame(0, [&](const core::FrameStats &s) {
            stats = s;
            done = true;
        });
        if (!rig.runUntil([&] { return done; })) {
            std::fprintf(stderr, "%s stalled\n",
                         scene.workload().name.c_str());
            return 1;
        }
        std::printf("%-18s %9u %9llu %10llu %12llu\n",
                    scene.workload().name.c_str(),
                    scene.triangleCount(),
                    (unsigned long long)stats.primsIn,
                    (unsigned long long)stats.fragments,
                    (unsigned long long)stats.cycles);
        std::string path = outdir + "/" + scene.workload().name +
                           ".ppm";
        scene.framebuffer().writePpm(path);
    }
    std::printf("images written to %s/*.ppm\n", outdir.c_str());
    return 0;
}
