/**
 * @file
 * The unified-shader story: GPGPU kernels on the same SIMT cores
 * graphics uses (the paper's core claim for Emerald + GPGPU-Sim).
 * Runs vector add, a divergent SAXPY, and a shared-memory reduction
 * through the full timing model and verifies results.
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/shader_builder.hh"
#include "scenes/shaders.hh"
#include "sim/config.hh"
#include "soc/configs.hh"

using namespace emerald;

namespace
{

/** Run one kernel to completion; returns GPU cycles elapsed. */
std::uint64_t
runKernel(soc::StandaloneGpu &rig, gpu::KernelLaunch launch)
{
    bool done = false;
    launch.onDone = [&] { done = true; };
    Tick start = rig.sim().curTick();
    rig.kernels().launch(std::move(launch));
    if (!rig.runUntil([&] { return done; })) {
        std::fprintf(stderr, "kernel did not finish\n");
        std::exit(1);
    }
    return (rig.sim().curTick() - start) / 1000; // 1 GHz -> cycles.
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    unsigned n = static_cast<unsigned>(cfg.getU64("n", 16384));

    soc::StandaloneGpu rig(64, 64, soc::caseStudy2GpuParams(),
                           soc::caseStudy2MemParams(),
                           SimulationBuilder().observability(cfg));
    mem::FunctionalMemory &fmem = rig.functionalMemory();
    core::ShaderBuilder builder;

    Addr a = fmem.allocate(n * 4);
    Addr b = fmem.allocate(n * 4);
    Addr c = fmem.allocate(n * 4);
    for (unsigned i = 0; i < n; ++i) {
        fmem.writeF32(a + i * 4, static_cast<float>(i));
        fmem.writeF32(b + i * 4, 2.0f * static_cast<float>(i));
    }

    // 1. Vector add.
    {
        gpu::KernelLaunch launch;
        launch.program = builder.buildKernel(
            "vecadd", scenes::kernelVecAddSource());
        launch.blockX = 128;
        launch.gridX = (n + 127) / 128;
        launch.memory = &fmem;
        launch.constants = {static_cast<float>(a),
                            static_cast<float>(b),
                            static_cast<float>(c),
                            static_cast<float>(n)};
        std::uint64_t cycles = runKernel(rig, std::move(launch));

        unsigned errors = 0;
        for (unsigned i = 0; i < n; ++i) {
            if (fmem.readF32(c + i * 4) !=
                3.0f * static_cast<float>(i)) {
                ++errors;
            }
        }
        std::printf("vecadd:  n=%u  %llu cycles  errors=%u\n", n,
                    (unsigned long long)cycles, errors);
        if (errors)
            return 1;
    }

    // 2. Divergent SAXPY (odd lanes x*s, even lanes x*2s).
    {
        gpu::KernelLaunch launch;
        launch.program = builder.buildKernel(
            "saxpy", scenes::kernelSaxpyBranchySource());
        launch.blockX = 128;
        launch.gridX = (n + 127) / 128;
        launch.memory = &fmem;
        launch.constants = {static_cast<float>(a),
                            static_cast<float>(c),
                            0.5f,
                            static_cast<float>(n)};
        std::uint64_t cycles = runKernel(rig, std::move(launch));

        unsigned errors = 0;
        for (unsigned i = 0; i < n; ++i) {
            float x = static_cast<float>(i);
            float scale = (i % 2 == 0) ? 1.0f : 0.5f;
            float expect = 3.0f * x + x * scale;
            if (std::fabs(fmem.readF32(c + i * 4) - expect) > 1e-3f) {
                ++errors;
            }
        }
        std::printf("saxpy:   n=%u  %llu cycles  errors=%u\n", n,
                    (unsigned long long)cycles, errors);
        if (errors)
            return 1;
    }

    // 3. Shared-memory reduction: one partial sum per 128-thread CTA.
    {
        unsigned ctas = (n + 127) / 128;
        Addr partial = fmem.allocate(ctas * 4);
        gpu::KernelLaunch launch;
        launch.program = builder.buildKernel(
            "reduce", scenes::kernelReduceSource());
        launch.blockX = 128;
        launch.gridX = ctas;
        launch.memory = &fmem;
        launch.sharedBytesPerCta = 128 * 4;
        launch.constants = {static_cast<float>(a),
                            static_cast<float>(partial)};
        std::uint64_t cycles = runKernel(rig, std::move(launch));

        double sum = 0.0;
        for (unsigned i = 0; i < ctas; ++i)
            sum += fmem.readF32(partial + i * 4);
        double expect = static_cast<double>(n) * (n - 1) / 2.0;
        std::printf("reduce:  n=%u  %llu cycles  sum=%.0f "
                    "(expect %.0f)\n",
                    n, (unsigned long long)cycles, sum, expect);
        if (std::fabs(sum - expect) > 1.0)
            return 1;
    }

    std::printf("all kernels passed on the unified SIMT model\n");
    return 0;
}
