#include "sim/sim_object.hh"

#include "sim/simulation.hh"

namespace emerald
{

SimObject::SimObject(Simulation &sim, const std::string &name)
    : StatGroup(sim.statsRoot(), name), _sim(sim), _name(name)
{
    _sim.registerObject(this);
}

SimObject::SimObject(SimObject &parent, const std::string &name)
    : StatGroup(parent, name), _sim(parent._sim),
      _name(parent.name() + "." + name)
{
    _sim.registerObject(this);
}

SimObject::~SimObject()
{
    _sim.unregisterObject(this);
}

Tick
SimObject::curTick() const
{
    return _sim.curTick();
}

void
SimObject::schedule(Event &ev, Tick when)
{
    _sim.eventQueue().schedule(ev, when);
}

void
SimObject::scheduleIn(Event &ev, Tick delta)
{
    _sim.eventQueue().schedule(ev, curTick() + delta);
}

void
SimObject::reschedule(Event &ev, Tick when)
{
    _sim.eventQueue().reschedule(ev, when);
}

void
SimObject::descheduleIfPending(Event &ev)
{
    if (ev.scheduled())
        _sim.eventQueue().deschedule(ev);
}

void
SimObject::registerProfileCounters()
{
    _sim.profiler().registerComponent(_name);
}

} // namespace emerald
