/**
 * @file
 * Orchestrator-side view of the sweep results store. The children
 * (emerald_bench --stats-out=sqlite:...) write runs; the orchestrator
 * only reads completion state and records sweep-level metadata. Both
 * sides create the schema from the shared sweepSchemaStatements(), so
 * whichever process touches the DB first wins and the other finds the
 * tables already in place.
 */

#ifndef EMERALD_SWEEP_DB_HH
#define EMERALD_SWEEP_DB_HH

#include <cstdint>
#include <string>
#include <vector>

struct sqlite3;

namespace emerald
{
namespace sweep
{

/** True when SQLite support was compiled in. */
bool sweepDbAvailable();

class SweepDb
{
  public:
    /** Open (creating if absent) @p path; fatal without SQLite. */
    explicit SweepDb(const std::string &path);
    ~SweepDb();

    SweepDb(const SweepDb &) = delete;
    SweepDb &operator=(const SweepDb &) = delete;

    /**
     * Fingerprints of runs already committed for @p bench at
     * @p gitSha — the resume journal: points whose fingerprint is
     * listed here are skipped on relaunch.
     */
    std::vector<std::string> doneFingerprints(
        const std::string &bench, const std::string &gitSha) const;

    /** Read a sweep_meta value ("" when unset). */
    std::string getMeta(const std::string &key) const;

    /** Insert or overwrite a sweep_meta value. */
    void setMeta(const std::string &key, const std::string &value);

    /**
     * Record one classified point failure (docs/resilience.md) in
     * run_failures. @p cls is a failureClassName() string; @p signal
     * 0 when none; @p exitCode -1 when the child did not exit
     * normally; @p recoveredTick the checkpoint tick the retry
     * resumed from (0 = cold).
     */
    void recordFailure(const std::string &bench,
                       const std::string &fingerprint,
                       const std::string &gitSha, unsigned attempt,
                       const std::string &cls, int signal,
                       int exitCode, std::uint64_t recoveredTick,
                       const std::string &detail);

    /**
     * Failures already recorded for one point — a relaunched
     * orchestrator resumes a half-retried point with its attempt
     * budget partially spent instead of reset.
     */
    unsigned failureCount(const std::string &bench,
                          const std::string &fingerprint,
                          const std::string &gitSha) const;

    /**
     * Set a point's runs.status without touching its stats (creates
     * the row if the point never committed — how 'quarantined' rows
     * for never-successful points come to exist).
     */
    void setRunStatus(const std::string &bench,
                      const std::string &fingerprint,
                      const std::string &gitSha,
                      const std::string &status);

    /** A point's runs.status ("" when no row exists). */
    std::string runStatus(const std::string &bench,
                          const std::string &fingerprint,
                          const std::string &gitSha) const;

  private:
    sqlite3 *_db = nullptr;
};

} // namespace sweep
} // namespace emerald

#endif // EMERALD_SWEEP_DB_HH
