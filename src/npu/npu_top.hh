/**
 * @file
 * The NPU device: command queue in front, systolic PE grid in the
 * middle, double-buffered scratchpads fed by the DMA engine at the
 * memory side.
 *
 * Execution walks the precomputed tile table (npu/systolic.hh) one
 * inference at a time:
 *
 *   load(t):    DMA in tile t's input + weight slices (one bursty
 *               transfer into the prefetch halves of the input and
 *               weight scratchpads),
 *   compute(t): run the PE grid for the tile's cycle count on the
 *               NPU clock,
 *   store(t):   on the final K-chunk of an output tile, DMA the
 *               accumulated outputs back.
 *
 * Double buffering overlaps load(t+1) with compute(t): at most two
 * tiles are scratchpad-resident, so the load cursor runs at most one
 * tile ahead of the compute cursor. Completions are delivered to the
 * host interface as interrupts after a modeled IRQ latency.
 */

#ifndef EMERALD_NPU_NPU_TOP_HH
#define EMERALD_NPU_NPU_TOP_HH

#include <deque>
#include <vector>

#include "npu/command_queue.hh"
#include "npu/dma.hh"
#include "npu/systolic.hh"
#include "sim/clocked.hh"
#include "sim/sim_object.hh"

namespace emerald::npu
{

struct NpuParams
{
    SystolicParams systolic;
    NpuDmaParams dma;
    /** Inference workload (npuModelLayers name). */
    std::string model = "tiny-cnn";
    /** Command queue capacity. */
    unsigned queueDepth = 4;
    /** Base of the NPU's tensor arena in physical memory. */
    Addr memBase = 0xC0000000ULL;
    /** Completion-interrupt delivery latency. */
    Tick irqLatency = ticksFromNs(200.0);
};

class NpuTop : public SimObject,
               public NpuCommandSink,
               public NpuDmaClient
{
  public:
    NpuTop(Simulation &sim, const std::string &name,
           const NpuParams &params, ClockDomain &clock,
           MemSink &downstream);

    /** Interrupt sink; wired by the owner before any submit. */
    void setInterruptClient(NpuIntClient *client)
    {
        _intClient = client;
    }

    NpuDmaEngine &dma() { return _dma; }
    const SystolicTiming &timing() const { return _timing; }
    std::size_t tilesPerInference() const { return _tiles.size(); }

    bool submit(const NpuCommand &cmd) override;
    std::size_t queueDepth() const override { return _queue.size(); }
    unsigned queueCapacity() const override
    {
        return _queue.capacity();
    }
    double inferenceWork() const override
    {
        return static_cast<double>(_tiles.size());
    }

    void dmaTransferDone(std::uint64_t token) override;
    void dmaTransferAborted(std::uint64_t token) override;

    void hangDiagnostics(std::ostream &os) const override;

    void serialize(CheckpointOut &out) const override;
    void unserialize(CheckpointIn &in) override;

    /** @{ Statistics. */
    Scalar statCmdsCompleted;
    Scalar statCmdsAborted;
    Scalar statCmdsRejected;
    Scalar statTiles;
    Scalar statComputeTicks;
    Distribution statCmdTicks;
    Distribution statQueueWaitTicks;
    /** @} */

  private:
    /**
     * DMA tokens: high half is the command generation, low half is
     * tile*3 + kind (0 = input load, 1 = weight load, 2 = store).
     * The generation tag keeps stale notifications from an aborted
     * command's transfers out of the next command's accounting.
     */
    enum TokenKind { TokInput = 0, TokWeight = 1, TokStore = 2 };
    std::uint64_t token(std::uint64_t tile, TokenKind kind) const
    {
        return (_execSeq << 32) | (tile * 3 + kind);
    }

    void startNextCommand();
    void pumpLoads();
    void maybeStartCompute();
    void computeDone();
    void checkCommandDone();
    void finishCommand(bool aborted);
    void deliverIrq();

    NpuParams _params;
    ClockDomain &_clock;
    SystolicTiming _timing;
    /** Tile walk of one inference; derived from params alone. */
    std::vector<TileWork> _tiles;
    NpuDmaEngine _dma;
    NpuCommandQueue _queue;
    NpuIntClient *_intClient = nullptr;

    /** @{ Active-command execution state. */
    bool _active = false;
    NpuCommand _cmd;
    Tick _execStart = 0;
    std::uint64_t _execSeq = 0;
    std::uint64_t _loadsIssued = 0;
    std::uint64_t _loadsDone = 0;
    std::uint64_t _tilesComputed = 0;
    std::uint64_t _storesIssued = 0;
    std::uint64_t _storesDone = 0;
    bool _computing = false;
    /** @} */

    /** Completions awaiting interrupt delivery. */
    struct IrqRecord
    {
        NpuCommand cmd;
        Tick finished = 0;
        bool aborted = false;
    };
    std::deque<IrqRecord> _pendingIrqs;

    EventFunction _computeEvent;
    EventFunction _irqEvent;
};

} // namespace emerald::npu

#endif // EMERALD_NPU_NPU_TOP_HH
