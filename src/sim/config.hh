/**
 * @file
 * A minimal key=value configuration store used by examples and
 * benchmark harnesses to override experiment parameters from the
 * command line (--key=value).
 */

#ifndef EMERALD_SIM_CONFIG_HH
#define EMERALD_SIM_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>

namespace emerald
{

/** String-keyed configuration with typed accessors. */
class Config
{
  public:
    Config() = default;

    /**
     * Parse "--key=value", "--key value" and bare boolean "--flag"
     * arguments; anything not starting with "--" is fatal.
     *
     * Keys are validated against the table of options the tools
     * actually read, so a typo like --fault-sed fails loudly (with a
     * near-miss suggestion) instead of being silently ignored. Pass
     * --allow-unknown-args to opt out, e.g. when feeding one argv to
     * several parsers. Programmatic set() is never validated.
     */
    void parseArgs(int argc, char **argv);

    void set(const std::string &key, const std::string &value);

    bool has(const std::string &key) const;

    std::string getString(const std::string &key,
                          const std::string &dflt) const;
    std::int64_t getInt(const std::string &key, std::int64_t dflt) const;
    /** Unsigned accessor; fatal on negative or malformed values. */
    std::uint64_t getU64(const std::string &key,
                         std::uint64_t dflt) const;
    double getDouble(const std::string &key, double dflt) const;
    bool getBool(const std::string &key, bool dflt) const;

  private:
    std::map<std::string, std::string> _values;
};

} // namespace emerald

#endif // EMERALD_SIM_CONFIG_HH
