/**
 * @file
 * Paper Fig. 14: M1 rendering bandwidth timelines under BAS (a) and
 * DASH-DTB (b), high load.
 * Expected shape: under DTB the CPU gets more bandwidth early in the
 * frame ( 4 vs 1 ), the GPU's share shrinks ( 5 vs 2 ), GPU read
 * latency rises, and the display is starved/aborts ( 6 ).
 */

#include "harness.hh"
#include "registry.hh"

using namespace emerald;
using namespace emerald::bench;

namespace
{

void
runAndPrint(soc::MemConfig config, BenchResults &results,
            const SimulationBuilder &builder)
{
    soc::SocParams p = caseStudy1Params(scenes::WorkloadId::M1_Chair,
                                        config, true);
    soc::SocTop soc(p, builder);
    soc.run();

    std::string prefix = soc::memConfigName(config);
    results.record(prefix + ".display_serviced",
                   soc.display().statRequests.value());
    results.record(prefix + ".display_aborted",
                   soc.display().statFramesAborted.value());
    results.addSimStats(soc.sim(), prefix);

    std::printf("--- %s ---\n", soc::memConfigName(config));
    std::printf("GPU mean read latency: %.0f ns; display serviced "
                "%.0f reqs, %.0f aborted frames\n",
                (soc.memory().channel(0).statReadLatencyGpu.mean() +
                 soc.memory().channel(1).statReadLatencyGpu.mean()) /
                    2.0 / 1000.0,
                soc.display().statRequests.value(),
                soc.display().statFramesAborted.value());

    Tick bucket = p.statsBucket;
    std::size_t buckets = 0;
    for (unsigned ch = 0; ch < soc.memory().numChannels(); ++ch)
        buckets = std::max(
            buckets,
            soc.memory().channel(ch).statBwGpu.buckets().size());
    buckets = std::min<std::size_t>(buckets, 600);

    double scale = 1e9 * secondsFromTicks(bucket);
    std::printf("%10s %10s %10s %10s\n", "t(ms)", "cpu", "gpu",
                "display");
    for (std::size_t i = 0; i < buckets; ++i) {
        double cpu = 0, gpu = 0, disp = 0;
        for (unsigned ch = 0; ch < soc.memory().numChannels(); ++ch) {
            const auto &mc = soc.memory().channel(ch);
            if (i < mc.statBwCpu.buckets().size())
                cpu += mc.statBwCpu.buckets()[i];
            if (i < mc.statBwGpu.buckets().size())
                gpu += mc.statBwGpu.buckets()[i];
            if (i < mc.statBwDisplay.buckets().size())
                disp += mc.statBwDisplay.buckets()[i];
        }
        std::printf("%10.2f %10.3f %10.3f %10.3f\n",
                    msFromTicks(Tick(i) * bucket), cpu / scale,
                    gpu / scale, disp / scale);
    }
}

} // namespace

namespace
{

int
runScenario(int argc, char **argv)
{
    BenchHarness harness(argc, argv, "fig14_m1_timeline");
    BenchResults &results = *harness.results;
    std::printf("=== Fig. 14: M1 bandwidth timeline, BAS vs DTB "
                "(high load, GB/s) ===\n");
    runAndPrint(soc::MemConfig::BAS, results, harness.builder());
    runAndPrint(soc::MemConfig::DTB, results, harness.builder());
    std::printf("\npaper shape: DTB boosts CPU share and squeezes "
                "GPU bandwidth during frames; display starved\n");
    return 0;
}

const RegisterScenario reg{{
    .name = "fig14_m1_timeline",
    .desc = "Fig. 14: M1 bandwidth timeline, BAS vs DTB, high load",
    .axes = {},
    .expectedShape = "DTB boosts CPU share, squeezes GPU bandwidth; display starved",
    .run = runScenario,
    .kind = ScenarioKind::Figure,
}};

} // namespace
