# Empty dependencies file for emerald_cache.
# This may be replaced when dependencies are built.
