/**
 * @file
 * Seeded fault injector attached at the memory-protocol seams.
 *
 * One FaultInjector executes one FaultPlan (see fault_plan.hh). It is
 * created by Simulation::configureFaults(), which publishes it on the
 * Simulation's fault::FaultDomain: the protocol seams
 * (MemSink::offer(), RetryList::wakeOne(), DramChannel, noc::Link)
 * resolve it through the domain they registered with — a pointer load
 * and a null check — so a run with no plan pays one predictable branch
 * per seam and its event stream (sim.check.event_hash) is bit-identical
 * to a build without the subsystem. There is no process-global
 * injector; every pointer hangs off one Simulation.
 *
 * Injected offer-rejections follow the real rejection protocol (the
 * requestor parks on the sink's RetryList), and the injector schedules
 * a flush event at the fault window's end that force-wakes the lists
 * it starved, so bursts heal and traffic resumes. Suppressed wakeups
 * deliberately do NOT heal — they model lost retryRequest() calls and
 * are what the ProgressWatchdog exists to catch.
 *
 * The RetryProtocolChecker consults faultedRequestor() so deliberate
 * faults are not reported as protocol bugs (see
 * src/sim/check/retry_protocol.cc).
 */

#ifndef EMERALD_SIM_FAULT_FAULT_INJECTOR_HH
#define EMERALD_SIM_FAULT_FAULT_INJECTOR_HH

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/fault/fault_plan.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace emerald
{

class MemRequestor;
class RetryList;

namespace fault
{

class FaultInjector
{
  public:
    FaultInjector(EventQueue &eq, StatGroup &parent, FaultPlan plan,
                  std::uint64_t seed);
    ~FaultInjector();

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /**
     * offer-burst seam: should the sink owning @p list force-reject
     * this offer from @p req? On true the injector has queued @p list
     * for a force-wake flush at the fault window's end and marked
     * @p req as a deliberate-fault victim.
     */
    bool injectOfferReject(RetryList &list, MemRequestor &req);

    /**
     * dram-stall seam: earliest tick the channel named @p name may
     * issue at; returns @p now when no stall window is open.
     */
    Tick issueStallEnd(const std::string &name, Tick now);

    /** link-delay seam: extra delivery latency for link @p name. */
    Tick extraLinkDelay(const std::string &name);

    /**
     * wake-suppress seam: swallow this wakeup? The caller must leave
     * @p req parked. The requestor is remembered as deliberately
     * faulted so the retry-protocol checker does not report it.
     */
    bool suppressWake(const RetryList &list, MemRequestor *req);

    /** dup-wake seam: follow this wake with a spurious duplicate? */
    bool duplicateWake(const RetryList &list, MemRequestor *req);

    /**
     * True when @p req was the victim of a deliberate fault; the
     * RetryProtocolChecker skips its lost-wakeup / quiescence panics
     * for such requestors.
     */
    bool
    faultedRequestor(const MemRequestor *req) const
    {
        return _faulted.count(req) != 0;
    }

    const FaultPlan &plan() const { return _plan; }

    /** Total injections across all sites and seams. */
    std::uint64_t injections() const;

  private:
    /** Declared before the Scalars so it is constructed first. */
    StatGroup _group;

  public:
    /** @{ sim.fault.* counters. */
    Scalar statOfferRejects;
    Scalar statStalls;
    Scalar statLinkDelays;
    Scalar statWakesSuppressed;
    Scalar statDupWakes;
    /** @} */

  private:
    /**
     * First site of @p kind whose filter matches @p name with an open
     * window and budget left, after a prob roll. The RNG is consumed
     * only when every deterministic filter passed, so an inert plan
     * leaves the random stream untouched.
     */
    FaultSite *pickSite(FaultKind kind, const std::string &name,
                        Tick now);

    /** Force-wake every list starved by an injected rejection. */
    void flushPending();

    EventQueue &_eq;
    FaultPlan _plan;
    Random _rng;

    /** Lists owed a force-wake once their fault window closes. */
    std::vector<RetryList *> _pendingFlush;
    /** Victims of deliberate faults (checker suppression set). */
    std::unordered_set<const MemRequestor *> _faulted;

    EventFunction _flushEvent;
};

} // namespace fault
} // namespace emerald

#endif // EMERALD_SIM_FAULT_FAULT_INJECTOR_HH
