file(REMOVE_RECURSE
  "CMakeFiles/fig13_display_service.dir/fig13_display_service.cpp.o"
  "CMakeFiles/fig13_display_service.dir/fig13_display_service.cpp.o.d"
  "fig13_display_service"
  "fig13_display_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_display_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
