file(REMOVE_RECURSE
  "CMakeFiles/fig19_dfsl.dir/fig19_dfsl.cpp.o"
  "CMakeFiles/fig19_dfsl.dir/fig19_dfsl.cpp.o.d"
  "fig19_dfsl"
  "fig19_dfsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_dfsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
