file(REMOVE_RECURSE
  "libemerald_noc.a"
)
