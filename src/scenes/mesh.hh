/**
 * @file
 * Triangle meshes for the workload library.
 *
 * Vertex layout (8 floats): position.xyz, normal.xyz, uv. Model
 * transforms are baked CPU-side when scenes are composed; the vertex
 * shader applies only the view-projection matrix — matching how the
 * paper's simple workloads (Table 6/8) drive 1-2 draw calls a frame.
 */

#ifndef EMERALD_SCENES_MESH_HH
#define EMERALD_SCENES_MESH_HH

#include <vector>

#include "core/draw_call.hh"
#include "core/math.hh"

namespace emerald::scenes
{

/** Floats per vertex: pos(3) + normal(3) + uv(2). */
constexpr unsigned vertexFloats = 8;

class Mesh
{
  public:
    /** Append one triangle (positions, normals, uvs per corner). */
    void addTriangle(const core::Vec3 pos[3], const core::Vec3 nrm[3],
                     const core::Vec2 uv[3]);

    /** Append a quad as two triangles (corners counter-clockwise). */
    void addQuad(const core::Vec3 &a, const core::Vec3 &b,
                 const core::Vec3 &c, const core::Vec3 &d,
                 const core::Vec3 &normal);

    /** Concatenate another mesh. */
    void append(const Mesh &other);

    /** Bake @p transform into positions (and rotate normals). */
    void transform(const core::Mat4 &m);

    unsigned
    vertexCount() const
    {
        return static_cast<unsigned>(_data.size() / vertexFloats);
    }
    unsigned triangleCount() const { return vertexCount() / 3; }

    const std::vector<float> &data() const { return _data; }

  private:
    std::vector<float> _data;
};

} // namespace emerald::scenes

#endif // EMERALD_SCENES_MESH_HH
