#include "sim/event_tracer.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace emerald
{

namespace
{

/** The component owning an event: its name up to the last dot. */
std::string
categoryOf(const std::string &event_name)
{
    auto pos = event_name.rfind('.');
    if (pos == std::string::npos || pos == 0)
        return "sim";
    return event_name.substr(0, pos);
}

} // namespace

// ---------------------------------------------------------------------
// EventTracer
// ---------------------------------------------------------------------

EventTracer::EventTracer(const std::string &path)
    : _path(path), _os(path)
{
    fatal_if(!_os.is_open(), "cannot open trace file '%s'", path.c_str());
    _os << "[";
}

EventTracer::~EventTracer()
{
    close();
}

void
EventTracer::emitRecord(const std::string &json)
{
    if (!_first)
        _os << ",";
    _os << "\n" << json;
    _first = false;
}

unsigned
EventTracer::tidFor(const std::string &category)
{
    auto it = _tids.find(category);
    if (it != _tids.end())
        return it->second;
    unsigned tid = static_cast<unsigned>(_tids.size());
    _tids.emplace(category, tid);
    emitRecord(strprintf(
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%u,"
        "\"args\":{\"name\":\"%s\"}}",
        tid, jsonEscape(category).c_str()));
    return tid;
}

void
EventTracer::onEvent(const std::string &name, Tick when, int priority,
                     std::uint64_t wall_ns)
{
    if (_closed)
        return;
    std::string category = categoryOf(name);
    unsigned tid = tidFor(category);
    // ts: simulated microseconds (ticks are picoseconds).
    // dur: wall-clock microseconds of this process() call, so slice
    // width shows where host time goes along the simulated timeline.
    emitRecord(strprintf(
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.6f,"
        "\"dur\":%.3f,\"pid\":0,\"tid\":%u,"
        "\"args\":{\"tick\":%llu,\"priority\":%d,\"wall_ns\":%llu}}",
        jsonEscape(name).c_str(), jsonEscape(category).c_str(),
        static_cast<double>(when) / 1e6,
        static_cast<double>(wall_ns) / 1e3, tid,
        (unsigned long long)when, priority,
        (unsigned long long)wall_ns));
    ++_numRecords;
}

void
EventTracer::close()
{
    if (_closed)
        return;
    _closed = true;
    _os << "\n]\n";
    _os.flush();
}

// ---------------------------------------------------------------------
// EventProfiler
// ---------------------------------------------------------------------

struct EventProfiler::Channel
{
    Channel(StatGroup &parent, const std::string &name)
        : group(parent, name),
          numProcessed(group, "numProcessed",
                       "events processed by this component"),
          wallNs(group, "wallNs",
                 "wall-clock nanoseconds spent in process()")
    {}

    StatGroup group;
    Scalar numProcessed;
    Scalar wallNs;
};

EventProfiler::EventProfiler(StatGroup &parent)
    : _group(parent, "profile")
{
    auto other = std::make_unique<Channel>(_group, "other");
    _other = other.get();
    _channels.emplace("other", std::move(other));
}

EventProfiler::~EventProfiler() = default;

void
EventProfiler::registerComponent(const std::string &name)
{
    if (name.empty() || _channels.count(name))
        return;
    _channels.emplace(name, std::make_unique<Channel>(_group, name));
    // Earlier events may have memoized to a shorter prefix (or
    // "other"); drop the memo so they re-resolve.
    _memo.clear();
}

EventProfiler::Channel *
EventProfiler::channelFor(const std::string &event_name)
{
    auto memo = _memo.find(event_name);
    if (memo != _memo.end())
        return memo->second;
    // Longest registered dot-prefix of the event name.
    Channel *found = _other;
    std::string prefix = event_name;
    while (true) {
        auto pos = prefix.rfind('.');
        if (pos == std::string::npos)
            break;
        prefix.resize(pos);
        auto it = _channels.find(prefix);
        if (it != _channels.end()) {
            found = it->second.get();
            break;
        }
    }
    _memo.emplace(event_name, found);
    return found;
}

void
EventProfiler::onEvent(const std::string &name, Tick when, int priority,
                       std::uint64_t wall_ns)
{
    (void)when;
    (void)priority;
    Channel *ch = channelFor(name);
    ++ch->numProcessed;
    ch->wallNs += static_cast<double>(wall_ns);
}

std::uint64_t
EventProfiler::eventsFor(const std::string &component) const
{
    auto it = _channels.find(component);
    if (it == _channels.end())
        return 0;
    return static_cast<std::uint64_t>(it->second->numProcessed.value());
}

std::uint64_t
EventProfiler::wallNsFor(const std::string &component) const
{
    auto it = _channels.find(component);
    if (it == _channels.end())
        return 0;
    return static_cast<std::uint64_t>(it->second->wallNs.value());
}

// ---------------------------------------------------------------------
// InstrumentChain
// ---------------------------------------------------------------------

void
InstrumentChain::add(EventInstrument *instrument)
{
    if (std::find(_instruments.begin(), _instruments.end(), instrument) ==
        _instruments.end())
        _instruments.push_back(instrument);
}

void
InstrumentChain::remove(EventInstrument *instrument)
{
    std::erase(_instruments, instrument);
}

void
InstrumentChain::onEvent(const std::string &name, Tick when,
                         int priority, std::uint64_t wall_ns)
{
    for (EventInstrument *instrument : _instruments)
        instrument->onEvent(name, when, priority, wall_ns);
}

} // namespace emerald
