/**
 * @file
 * Trace-replay driver (--replay-trace): the fast path for memory
 * scheduler policy sweeps.
 *
 * Replaces the AppModel + graphics pipeline pair with a driver that
 * re-injects a captured memory-traffic trace (mem/traffic_trace.hh)
 * into the full memory system. Each frame keeps the execution-driven
 * phase structure — CPU prep quotas, render window with DASH progress
 * reporting, vsync pacing — but the GPU-side traffic comes from one
 * replay port per SIMT core feeding the core's L1s at the recorded
 * per-transaction offsets, in recorded order, instead of from shader
 * execution. Everything below the LSU boundary (L1s, GPU NoC, L2,
 * system NoC, DRAM scheduling, DASH) runs the real timing model, so
 * policy comparisons keep their shape at a fraction of the cost.
 */

#ifndef EMERALD_SOC_REPLAY_HH
#define EMERALD_SOC_REPLAY_HH

#include <functional>
#include <memory>
#include <vector>

#include "gpu/gpu_top.hh"
#include "mem/dash_scheduler.hh"
#include "soc/cpu_traffic.hh"

namespace emerald::mem
{
class TrafficTraceReader;
class TrafficTraceWriter;
} // namespace emerald::mem

namespace emerald::soc
{

class ReplayPort;

struct ReplayParams
{
    /** GPU frame period (vsync pacing), as in AppParams. */
    Tick gpuFramePeriod = ticksFromMs(33.0);
    /** Prep-quota memory requests per CPU core per frame. */
    std::uint64_t cpuPrepRequests = 2000;
    /** Frames to replay (must not exceed the trace's frame count). */
    unsigned frames = 5;
    /** DASH progress polling interval during the render window. */
    Tick progressPollPeriod = ticksFromUs(100.0);
};

/**
 * Drives one replay run: owns one ReplayPort per SIMT core and mirrors
 * the AppModel frame loop (prep -> render -> vsync) with the render
 * phase fed from the trace. A frame's render window closes when every
 * port has injected all of that frame's transactions and every read
 * response has returned.
 */
class TraceReplayDriver : public SimObject
{
  public:
    /** Per-frame timing record, same shape as AppModel::FrameRecord. */
    struct FrameRecord
    {
        Tick prepStart = 0;
        Tick renderStart = 0;
        Tick renderEnd = 0;

        Tick gpuTime() const { return renderEnd - renderStart; }
        Tick totalTime() const { return renderEnd - prepStart; }
    };

    /**
     * @param trace must expose exactly one client per GPU core and at
     *        least @p params.frames frames (fatal otherwise); it must
     *        outlive the driver.
     */
    TraceReplayDriver(Simulation &sim, const std::string &name,
                      const ReplayParams &params,
                      const mem::TrafficTraceReader &trace,
                      gpu::GpuTop &gpu,
                      std::vector<CpuCoreModel *> cores,
                      mem::DashCoordinator *dash,
                      std::function<void()> on_all_frames_done);
    ~TraceReplayDriver() override;

    void start();

    bool done() const { return _framesDone >= _params.frames; }
    const std::vector<FrameRecord> &frames() const { return _records; }

    /**
     * Re-capture the replayed traffic into @p writer (round-trip
     * verification): registers one client per port, in port = core
     * index order. Null detaches.
     */
    void setTraceCapture(mem::TrafficTraceWriter *writer);

    /**
     * Replay state (port cursors, in-flight reads) deliberately does
     * not round-trip; SimulationBuilder refuses --replay-trace with
     * checkpoint/restore, so reaching this is a logic error.
     */
    void serialize(CheckpointOut &out) const override;

    /** @{ Statistics. */
    Scalar statFrames;
    Scalar statReplayedTxns;
    Distribution statGpuFrameTicks;
    Distribution statTotalFrameTicks;
    /** @} */

  private:
    friend class ReplayPort;

    void beginPrep();
    void corePrepDone();
    void beginRender();
    /** A port finished its share of the current frame. */
    void portFrameDone();
    void renderDone();
    void pollProgress();

    ReplayParams _params;
    const mem::TrafficTraceReader &_trace;
    std::vector<CpuCoreModel *> _cores;
    mem::DashCoordinator *_dash;
    int _dashIp = -1;
    std::function<void()> _onDone;
    /** Re-capture sink for round-trip verification, or null. */
    mem::TrafficTraceWriter *_writer = nullptr;

    std::vector<std::unique_ptr<ReplayPort>> _ports;

    unsigned _framesDone = 0;
    unsigned _coresPending = 0;
    unsigned _portsPending = 0;
    bool _rendering = false;
    Tick _frameSlotStart = 0;
    /** DASH progress already reported for the current frame. */
    double _progressReported = 0.0;
    FrameRecord _current;
    std::vector<FrameRecord> _records;

    EventFunction _startPrepEvent;
    EventFunction _pollEvent;
};

} // namespace emerald::soc

#endif // EMERALD_SOC_REPLAY_HH
