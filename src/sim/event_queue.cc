#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace emerald
{

void
EventQueue::schedule(Event &ev, Tick when)
{
    panic_if(ev._scheduled, "event %s scheduled twice", ev.name().c_str());
    panic_if(when < _curTick,
             "event %s scheduled in the past (%llu < %llu)",
             ev.name().c_str(), (unsigned long long)when,
             (unsigned long long)_curTick);
    ev._scheduled = true;
    ev._when = when;
    ++ev._generation;
    _heap.push(Entry{when, ev.priority(), _nextSeq++, ev._generation, &ev});
    ++_liveEvents;
}

void
EventQueue::reschedule(Event &ev, Tick when)
{
    if (ev._scheduled)
        deschedule(ev);
    schedule(ev, when);
}

void
EventQueue::deschedule(Event &ev)
{
    panic_if(!ev._scheduled, "descheduling idle event %s",
             ev.name().c_str());
    // The heap entry is invalidated lazily via the generation counter.
    ev._scheduled = false;
    ++ev._generation;
    --_liveEvents;
}

void
EventQueue::skim()
{
    while (!_heap.empty()) {
        const Entry &top = _heap.top();
        if (top.event->_scheduled &&
            top.event->_generation == top.generation) {
            return;
        }
        _heap.pop();
    }
}

Tick
EventQueue::nextTick()
{
    skim();
    panic_if(_heap.empty(), "nextTick on empty event queue");
    return _heap.top().when;
}

bool
EventQueue::runOne()
{
    skim();
    if (_heap.empty())
        return false;
    Entry top = _heap.top();
    _heap.pop();
    panic_if(top.when < _curTick, "event queue went backwards");
    _curTick = top.when;
    Event *ev = top.event;
    ev->_scheduled = false;
    ++ev->_generation;
    --_liveEvents;
    ++_numProcessed;
    ev->process();
    return true;
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    std::uint64_t processed = 0;
    while (true) {
        skim();
        if (_heap.empty() || _heap.top().when > limit)
            break;
        runOne();
        ++processed;
    }
    return processed;
}

} // namespace emerald
