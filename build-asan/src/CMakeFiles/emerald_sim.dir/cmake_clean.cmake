file(REMOVE_RECURSE
  "CMakeFiles/emerald_sim.dir/sim/clocked.cc.o"
  "CMakeFiles/emerald_sim.dir/sim/clocked.cc.o.d"
  "CMakeFiles/emerald_sim.dir/sim/config.cc.o"
  "CMakeFiles/emerald_sim.dir/sim/config.cc.o.d"
  "CMakeFiles/emerald_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/emerald_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/emerald_sim.dir/sim/event_tracer.cc.o"
  "CMakeFiles/emerald_sim.dir/sim/event_tracer.cc.o.d"
  "CMakeFiles/emerald_sim.dir/sim/logging.cc.o"
  "CMakeFiles/emerald_sim.dir/sim/logging.cc.o.d"
  "CMakeFiles/emerald_sim.dir/sim/packet.cc.o"
  "CMakeFiles/emerald_sim.dir/sim/packet.cc.o.d"
  "CMakeFiles/emerald_sim.dir/sim/sim_object.cc.o"
  "CMakeFiles/emerald_sim.dir/sim/sim_object.cc.o.d"
  "CMakeFiles/emerald_sim.dir/sim/simulation.cc.o"
  "CMakeFiles/emerald_sim.dir/sim/simulation.cc.o.d"
  "CMakeFiles/emerald_sim.dir/sim/stats.cc.o"
  "CMakeFiles/emerald_sim.dir/sim/stats.cc.o.d"
  "libemerald_sim.a"
  "libemerald_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emerald_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
