#include "sim/serialize/packet_serialize.hh"

#include "sim/packet.hh"
#include "sim/packet_pool.hh"
#include "sim/serialize/registry.hh"

namespace emerald
{

void
putPacket(CheckpointOut &out, const std::string &prefix,
          const MemPacket &pkt, const CheckpointRegistry &reg)
{
    out.putU64(prefix + ".addr", pkt.addr);
    out.putU64(prefix + ".size", pkt.size);
    out.putBool(prefix + ".write", pkt.write);
    out.putU64(prefix + ".tclass",
               static_cast<std::uint64_t>(pkt.tclass));
    out.putU64(prefix + ".kind", static_cast<std::uint64_t>(pkt.kind));
    out.putI64(prefix + ".requestor_id", pkt.requestorId);
    out.putStr(prefix + ".client",
               pkt.client ? reg.clientName(*pkt.client)
                          : std::string());
    out.putU64(prefix + ".token", pkt.token);
    out.putTick(prefix + ".issued", pkt.issued);
}

MemPacket *
getPacket(CheckpointIn &in, const std::string &prefix,
          PacketPool &pool, const CheckpointRegistry &reg)
{
    std::string client_name = in.getStr(prefix + ".client");
    MemClient *client =
        client_name.empty() ? nullptr : &reg.client(client_name);
    std::uint64_t tclass = in.getU64(prefix + ".tclass");
    std::uint64_t kind = in.getU64(prefix + ".kind");
    fatal_if(kind >= static_cast<std::uint64_t>(AccessKind::NumKinds),
             "checkpoint section '%s': packet '%s' has bad access "
             "kind %llu", in.sectionName().c_str(), prefix.c_str(),
             (unsigned long long)kind);
    MemPacket *pkt = pool.alloc(
        in.getU64(prefix + ".addr"),
        static_cast<unsigned>(in.getU64(prefix + ".size")),
        in.getBool(prefix + ".write"),
        static_cast<TrafficClass>(tclass),
        static_cast<AccessKind>(kind),
        static_cast<int>(in.getI64(prefix + ".requestor_id")), client,
        in.getU64(prefix + ".token"));
    pkt->issued = in.getTick(prefix + ".issued");
    return pkt;
}

} // namespace emerald
